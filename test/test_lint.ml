(* Unit tests for the gcs lint pass.

   For every rule: a positive fixture that must fire, negatives that
   must stay silent (including the sanctioned-sink and scoping
   exemptions), and an allow-attributed variant that must downgrade the
   finding to a suppression. Fixtures are inline sources handed to
   [Lint.lint_source] under a fake repo-relative path, since the
   path-dependent rules (D2's prng exemption, D3's core/impl scope,
   P1's lib scope) key off it. The suite ends with a self-lint: the
   real repo tree must report zero non-suppressed findings. *)

let lint ~path src = Gcs_lint.Lint.lint_source ~path src

let live ~path src =
  List.filter (fun f -> not f.Gcs_lint.Finding.suppressed) (lint ~path src)

let allowed ~path src =
  List.filter (fun f -> f.Gcs_lint.Finding.suppressed) (lint ~path src)

let rules_of fs = List.map (fun f -> f.Gcs_lint.Finding.rule) fs

let fires name ~path ~rule src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        "live findings" [ rule ]
        (rules_of (live ~path src)))

let silent name ~path src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        "live findings" [] (rules_of (live ~path src)))

let downgraded name ~path ~rule src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        "live findings" [] (rules_of (live ~path src));
      Alcotest.(check (list string))
        "suppressed findings" [ rule ]
        (rules_of (allowed ~path src)))

let downgraded_rules name ~path ~rules src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        "live findings" [] (rules_of (live ~path src));
      Alcotest.(check (list string))
        "suppressed findings" rules
        (rules_of (allowed ~path src)))

(* Scopes: D3 only looks under lib/core and lib/impl, so the other
   rules' fixtures live under lib/apps to keep each test single-rule. *)
let apps = "lib/apps/fixture.ml"
let core = "lib/core/fixture.ml"

let d1 =
  [
    fires "fold without sink fires" ~path:apps ~rule:"D1"
      "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []";
    fires "iter fires" ~path:apps ~rule:"D1"
      "let dump out tbl = Hashtbl.iter (fun k v -> out k v) tbl";
    fires "to_seq fires" ~path:apps ~rule:"D1"
      "let s tbl = Hashtbl.to_seq tbl";
    silent "fold into direct List.sort is sanctioned" ~path:apps
      "let keys tbl =\n\
      \  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])";
    silent "fold piped into List.sort is sanctioned" ~path:apps
      "let keys tbl =\n\
      \  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare";
    silent "fold under List.sort via @@ is sanctioned" ~path:apps
      "let keys tbl =\n\
      \  List.sort Int.compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) tbl []";
    silent "sort_uniq counts as a sink" ~path:apps
      "let keys tbl =\n\
      \  List.sort_uniq Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])";
    downgraded "allow attribute on the expression" ~path:apps ~rule:"D1"
      "let keys tbl =\n\
      \  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@gcs.lint.allow \"D1\"])";
  ]

let d2 =
  [
    fires "Random outside prng fires" ~path:apps ~rule:"D2"
      "let roll () = Random.int 6";
    fires "Random.State outside prng fires" ~path:apps ~rule:"D2"
      "let roll st = Random.State.int st 6";
    fires "gettimeofday fires" ~path:apps ~rule:"D2"
      "let now () = Unix.gettimeofday ()";
    fires "Sys.time fires" ~path:apps ~rule:"D2" "let now () = Sys.time ()";
    silent "Random inside lib/stdx/prng.ml is the one sanctioned home"
      ~path:"lib/stdx/prng.ml" "let draw st = Random.State.int st 10";
    silent "gettimeofday inside lib/transport/clock.ml is sanctioned"
      ~path:"lib/transport/clock.ml" "let read () = Unix.gettimeofday ()";
    fires "entropy is not sanctioned in the clock module"
      ~path:"lib/transport/clock.ml" ~rule:"D2" "let roll () = Random.int 6";
    fires "wall clock is not sanctioned in the prng module"
      ~path:"lib/stdx/prng.ml" ~rule:"D2" "let now () = Unix.gettimeofday ()";
    downgraded "allow attribute on the binding" ~path:apps ~rule:"D2"
      "let now () = Unix.gettimeofday () [@@gcs.lint.allow \"D2\"]";
    downgraded "floating allow covers the rest of the file" ~path:apps
      ~rule:"D2" "[@@@gcs.lint.allow \"D2\"]\n\nlet roll () = Random.int 6";
  ]

let d3 =
  [
    fires "= on a constructor fires in core" ~path:core ~rule:"D3"
      "let f x = x = Some 1";
    fires "<> on a list fires in core" ~path:core ~rule:"D3"
      "let f x = x <> []";
    fires "= on a tuple fires in core" ~path:core ~rule:"D3"
      "let f a b = (a, b) = (1, 2)";
    fires "bare polymorphic compare fires in core" ~path:core ~rule:"D3"
      "let f a b = compare a b";
    fires "compare passed higher-order fires in core" ~path:core ~rule:"D3"
      "let sorted xs = List.sort compare xs";
    fires "Hashtbl.hash fires in core" ~path:core ~rule:"D3"
      "let h x = Hashtbl.hash x";
    silent "= against an int literal is scalar" ~path:core "let f x = x = 1";
    silent "= against a string literal is scalar" ~path:core
      "let f x = x = \"tag\"";
    silent "outside core/impl the rule is off" ~path:apps
      "let f x = x = Some 1";
    silent "a file defining its own compare shadows the polymorphic one"
      ~path:core "let compare a b = Int.compare a b\nlet f a b = compare a b";
    downgraded "allow attribute respected" ~path:core ~rule:"D3"
      "let f x = ((x = Some 1) [@gcs.lint.allow \"D3\"])";
  ]

let p1 =
  [
    fires "List.hd fires in lib" ~path:apps ~rule:"P1"
      "let first xs = List.hd xs";
    fires "Option.get fires in lib" ~path:apps ~rule:"P1"
      "let v o = Option.get o";
    fires "Array.unsafe_get fires in lib" ~path:apps ~rule:"P1"
      "let g a = Array.unsafe_get a 0";
    silent "outside lib the rule is off" ~path:"bin/fixture.ml"
      "let first xs = List.hd xs";
    silent "total match is the fix" ~path:apps
      "let first = function x :: _ -> x | [] -> invalid_arg \"empty\"";
    downgraded "allow attribute respected" ~path:apps ~rule:"P1"
      "let first xs = (List.hd xs [@gcs.lint.allow \"P1\"])";
    downgraded_rules "allow payload may list several rules" ~path:apps
      ~rules:[ "D1"; "P1" ]
      "let first tbl xs =\n\
      \  ((ignore (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []);\n\
      \    List.hd xs)\n\
      \  [@gcs.lint.allow \"D1, P1\"])";
  ]

let p2 =
  [
    fires "catch-all wildcard swallow fires" ~path:apps ~rule:"P2"
      "let f g = try g () with _ -> 0";
    fires "catch-all variable swallow fires" ~path:apps ~rule:"P2"
      "let f g = try g () with e -> ignore e; 0";
    silent "re-raising catch-all is fine" ~path:apps
      "let f g = try g () with e -> raise e";
    silent "specific constructor is fine" ~path:apps
      "let f g = try g () with Not_found -> 0";
    silent "guarded catch-all is a deliberate filter" ~path:apps
      "let f g p = try g () with e when p e -> 0";
    downgraded "allow attribute respected" ~path:apps ~rule:"P2"
      "let f g = ((try g () with _ -> 0) [@gcs.lint.allow \"P2\"])";
  ]

let c1 =
  [
    fires "ref write in a Domain.spawn lambda fires" ~path:apps ~rule:"C1"
      "let f () =\n\
      \  let total = ref 0 in\n\
      \  let d = Domain.spawn (fun () -> total := 1) in\n\
      \  Domain.join d";
    fires "Hashtbl write in a Pool closure fires" ~path:apps ~rule:"C1"
      "let f tbl xs = Pool.iter (fun x -> Hashtbl.replace tbl x x) xs";
    fires "array write in a Pool closure fires" ~path:apps ~rule:"C1"
      "let f a xs = Pool.iter (fun i -> a.(i) <- 1) xs";
    fires "a named local function spawned by name is analyzed" ~path:apps
      ~rule:"C1"
      "let f () =\n\
      \  let r = ref 0 in\n\
      \  let worker () = r := 1 in\n\
      \  Domain.join (Domain.spawn worker)";
    fires "one trampoline call deep is analyzed" ~path:apps ~rule:"C1"
      "let f r =\n\
      \  let node p = r := p in\n\
      \  Domain.join (Domain.spawn (fun () -> node 3))";
    silent "closure-local mutable state is domain-local" ~path:apps
      "let f xs = Pool.iter (fun x -> let r = ref 0 in r := x; ignore !r) xs";
    silent "Atomic routing is sanctioned" ~path:apps
      "let f c xs = Pool.iter (fun x -> Atomic.set c x) xs";
    silent "a write under Lock.with_lock is sanctioned" ~path:apps
      "let f l r xs = Pool.iter (fun x -> Lock.with_lock l (fun () -> r := x)) xs";
    silent "mutation outside any spawn closure is not C1's business"
      ~path:apps "let f r = r := 1";
    downgraded "allow attribute respected" ~path:apps ~rule:"C1"
      "let f tbl xs =\n\
      \  Pool.iter (fun x -> (Hashtbl.replace tbl x x [@gcs.lint.allow \
       \"C1\"])) xs";
  ]

let c2 =
  [
    fires "a call that can raise between lock and unlock fires" ~path:apps
      ~rule:"C2" "let f m g = Mutex.lock m; g (); Mutex.unlock m";
    fires "lock with no unlock on the path fires" ~path:apps ~rule:"C2"
      "let f m r = Mutex.lock m; r := 1";
    fires "a bare Mutex.lock outside a sequence fires" ~path:apps ~rule:"C2"
      "let f m = Mutex.lock m";
    silent "harmless straight-line section is provably paired" ~path:apps
      "let f m r = Mutex.lock m; r := 1; Mutex.unlock m; !r";
    silent "match-with-exception that unlocks in every case is safe"
      ~path:apps
      "let f m g =\n\
      \  Mutex.lock m;\n\
      \  match g () with\n\
      \  | v -> Mutex.unlock m; v\n\
      \  | exception e -> Mutex.unlock m; raise e";
    silent "lib/stdx/lock.ml is the sanctioned home of raw Mutex"
      ~path:"lib/stdx/lock.ml"
      "let f m g = Mutex.lock m; g (); Mutex.unlock m";
    downgraded "allow attribute respected" ~path:apps ~rule:"C2"
      "let f m g = ((Mutex.lock m; g (); Mutex.unlock m) [@gcs.lint.allow \
       \"C2\"])";
  ]

let c3 =
  [
    fires "Atomic.set of a function of Atomic.get fires" ~path:apps
      ~rule:"C3" "let f c = Atomic.set c (Atomic.get c + 1)";
    fires "let-bound get followed by set fires" ~path:apps ~rule:"C3"
      "let f c = let v = Atomic.get c in Atomic.set c (v + 1)";
    fires "check-then-act max update fires" ~path:apps ~rule:"C3"
      "let f c r = if r > Atomic.get c then Atomic.set c r";
    silent "a compare_and_set retry loop is the fix" ~path:apps
      "let rec f c v =\n\
      \  let seen = Atomic.get c in\n\
      \  if v > seen then\n\
      \    if not (Atomic.compare_and_set c seen v) then f c v";
    silent "an idempotent latch (set of a literal) is not a lost update"
      ~path:apps "let f c = if not (Atomic.get c) then Atomic.set c true";
    silent "get and set on different atomics are unrelated" ~path:apps
      "let f a b = Atomic.set b (Atomic.get a)";
    downgraded "allow attribute respected" ~path:apps ~rule:"C3"
      "let f c = (Atomic.set c (Atomic.get c + 1) [@gcs.lint.allow \"C3\"])";
  ]

let c4 =
  [
    fires "Condition.wait under a held lock fires" ~path:apps ~rule:"C4"
      "let f l c m = Lock.with_lock l (fun () -> Condition.wait c m)";
    fires "a blocking Mailbox.recv under a held lock fires" ~path:apps
      ~rule:"C4"
      "let f l mb = Lock.with_lock l (fun () -> Mailbox.recv mb)";
    fires "Lock.wait while holding a second lock fires" ~path:apps
      ~rule:"C4"
      "let f a b c =\n\
      \  Lock.with_lock a (fun () ->\n\
      \      Lock.with_lock b (fun () -> Lock.wait c b))";
    silent "Lock.wait on the one held lock is the sanctioned block"
      ~path:apps
      "let f l c = Lock.with_lock l (fun () -> Lock.wait c l)";
    fires "an inverted acquisition order is a static cycle" ~path:apps
      ~rule:"C4"
      "let f a b = Lock.with_lock a (fun () -> Lock.with_lock b (fun () -> \
       ()))\n\
       let g a b = Lock.with_lock b (fun () -> Lock.with_lock a (fun () -> \
       ()))";
    silent "a consistent acquisition order has no cycle" ~path:apps
      "let f a b = Lock.with_lock a (fun () -> Lock.with_lock b (fun () -> \
       ()))\n\
       let g a b = Lock.with_lock a (fun () -> Lock.with_lock b (fun () -> \
       ()))";
    silent "Mutex.protect nests count as ordered, not as raw locks"
      ~path:apps
      "let f a b = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))";
    downgraded "floating allow downgrades the cycle" ~path:apps ~rule:"C4"
      "[@@@gcs.lint.allow \"C4\"]\n\
       let f a b = Lock.with_lock a (fun () -> Lock.with_lock b (fun () -> \
       ()))\n\
       let g a b = Lock.with_lock b (fun () -> Lock.with_lock a (fun () -> \
       ()))";
  ]

let a1 =
  [
    fires "an allow under which nothing fires is itself a finding"
      ~path:apps ~rule:"A1" "let f x = (x + 1 [@gcs.lint.allow \"D1\"])";
    fires "a stale floating allow is flagged" ~path:apps ~rule:"A1"
      "[@@@gcs.lint.allow \"P2\"]\nlet f x = x";
    Alcotest.test_case "a partially stale rule list names the dead rule"
      `Quick
      (fun () ->
        let src = "let first xs = (List.hd xs [@gcs.lint.allow \"D1, P1\"])" in
        Alcotest.(check (list string))
          "live findings" [ "A1" ]
          (rules_of (live ~path:apps src));
        Alcotest.(check (list string))
          "suppressed findings" [ "P1" ]
          (rules_of (allowed ~path:apps src)));
    silent "a used allow is not flagged" ~path:apps
      "let now () = (Unix.gettimeofday () [@gcs.lint.allow \"D2\"])";
    fires "A1 is not itself suppressible" ~path:apps ~rule:"A1"
      "let f x = (x + 1 [@gcs.lint.allow \"D1, A1\"])";
  ]

let e0 =
  [
    fires "syntax error reports E0, not an exception" ~path:apps ~rule:"E0"
      "let let = 3";
  ]

(* The same inverted-order shape `gcs lockcheck` must catch dynamically
   (see test_lock.ml): the static C4 pass and the runtime detector
   cross-validate on one fixture. *)
let static_dynamic_cross_validation () =
  let src =
    "let f a b = Lock.with_lock a (fun () -> Lock.with_lock b (fun () -> \
     ()))\n\
     let g a b = Lock.with_lock b (fun () -> Lock.with_lock a (fun () -> \
     ()))"
  in
  let findings, edges = Gcs_lint.Lint.analyze ~path:apps src in
  Alcotest.(check (list string)) "static C4 cycle" [ "C4" ]
    (rules_of (List.filter (fun f -> not f.Gcs_lint.Finding.suppressed) findings));
  Alcotest.(check (list (pair string string)))
    "both edge directions recorded"
    [ ("a", "b"); ("b", "a") ]
    edges

(* The linter's own verdict on the real tree: zero live findings. This
   is the test-suite twin of the CI `gcs lint` gate, so a hazard
   introduced without an explicit allow breaks `dune runtest` locally
   long before CI. *)
let self_lint () =
  match Gcs_lint.Driver.find_root () with
  | None -> Alcotest.fail "no dune-project above the test's cwd"
  | Some root ->
      let report = Gcs_lint.Driver.run ~root in
      if report.Gcs_lint.Driver.files = 0 then
        Alcotest.fail "self-lint scanned zero files";
      if not (Gcs_lint.Driver.clean report) then
        Alcotest.failf "repo does not lint clean:\n%s"
          (String.concat "\n"
             (List.map Gcs_lint.Finding.to_string
                report.Gcs_lint.Driver.findings))

let () =
  Alcotest.run "lint"
    [
      ("D1 unordered iteration", d1);
      ("D2 entropy and wall clock", d2);
      ("D3 polymorphic structural ops", d3);
      ("P1 partial stdlib functions", p1);
      ("P2 exception swallowing", p2);
      ("C1 cross-domain closure writes", c1);
      ("C2 exception-unsafe critical sections", c2);
      ("C3 atomic read-modify-write", c3);
      ("C4 blocking and lock order", c4);
      ("A1 suppression audit", a1);
      ("E0 parse failure", e0);
      ( "static/dynamic cross-validation",
        [
          Alcotest.test_case "inverted order yields C4 and both edges"
            `Quick static_dynamic_cross_validation;
        ] );
      ( "self-lint",
        [ Alcotest.test_case "repo tree is clean" `Quick self_lint ] );
    ]
