(* Unit tests for the gcs lint pass.

   For every rule: a positive fixture that must fire, negatives that
   must stay silent (including the sanctioned-sink and scoping
   exemptions), and an allow-attributed variant that must downgrade the
   finding to a suppression. Fixtures are inline sources handed to
   [Lint.lint_source] under a fake repo-relative path, since the
   path-dependent rules (D2's prng exemption, D3's core/impl scope,
   P1's lib scope) key off it. The suite ends with a self-lint: the
   real repo tree must report zero non-suppressed findings. *)

let lint ~path src = Gcs_lint.Lint.lint_source ~path src

let live ~path src =
  List.filter (fun f -> not f.Gcs_lint.Finding.suppressed) (lint ~path src)

let allowed ~path src =
  List.filter (fun f -> f.Gcs_lint.Finding.suppressed) (lint ~path src)

let rules_of fs = List.map (fun f -> f.Gcs_lint.Finding.rule) fs

let fires name ~path ~rule src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        "live findings" [ rule ]
        (rules_of (live ~path src)))

let silent name ~path src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        "live findings" [] (rules_of (live ~path src)))

let downgraded name ~path ~rule src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        "live findings" [] (rules_of (live ~path src));
      Alcotest.(check (list string))
        "suppressed findings" [ rule ]
        (rules_of (allowed ~path src)))

(* Scopes: D3 only looks under lib/core and lib/impl, so the other
   rules' fixtures live under lib/apps to keep each test single-rule. *)
let apps = "lib/apps/fixture.ml"
let core = "lib/core/fixture.ml"

let d1 =
  [
    fires "fold without sink fires" ~path:apps ~rule:"D1"
      "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []";
    fires "iter fires" ~path:apps ~rule:"D1"
      "let dump out tbl = Hashtbl.iter (fun k v -> out k v) tbl";
    fires "to_seq fires" ~path:apps ~rule:"D1"
      "let s tbl = Hashtbl.to_seq tbl";
    silent "fold into direct List.sort is sanctioned" ~path:apps
      "let keys tbl =\n\
      \  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])";
    silent "fold piped into List.sort is sanctioned" ~path:apps
      "let keys tbl =\n\
      \  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare";
    silent "fold under List.sort via @@ is sanctioned" ~path:apps
      "let keys tbl =\n\
      \  List.sort Int.compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) tbl []";
    silent "sort_uniq counts as a sink" ~path:apps
      "let keys tbl =\n\
      \  List.sort_uniq Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])";
    downgraded "allow attribute on the expression" ~path:apps ~rule:"D1"
      "let keys tbl =\n\
      \  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@gcs.lint.allow \"D1\"])";
  ]

let d2 =
  [
    fires "Random outside prng fires" ~path:apps ~rule:"D2"
      "let roll () = Random.int 6";
    fires "Random.State outside prng fires" ~path:apps ~rule:"D2"
      "let roll st = Random.State.int st 6";
    fires "gettimeofday fires" ~path:apps ~rule:"D2"
      "let now () = Unix.gettimeofday ()";
    fires "Sys.time fires" ~path:apps ~rule:"D2" "let now () = Sys.time ()";
    silent "Random inside lib/stdx/prng.ml is the one sanctioned home"
      ~path:"lib/stdx/prng.ml" "let draw st = Random.State.int st 10";
    silent "gettimeofday inside lib/transport/clock.ml is sanctioned"
      ~path:"lib/transport/clock.ml" "let read () = Unix.gettimeofday ()";
    fires "entropy is not sanctioned in the clock module"
      ~path:"lib/transport/clock.ml" ~rule:"D2" "let roll () = Random.int 6";
    fires "wall clock is not sanctioned in the prng module"
      ~path:"lib/stdx/prng.ml" ~rule:"D2" "let now () = Unix.gettimeofday ()";
    downgraded "allow attribute on the binding" ~path:apps ~rule:"D2"
      "let now () = Unix.gettimeofday () [@@gcs.lint.allow \"D2\"]";
    downgraded "floating allow covers the rest of the file" ~path:apps
      ~rule:"D2" "[@@@gcs.lint.allow \"D2\"]\n\nlet roll () = Random.int 6";
  ]

let d3 =
  [
    fires "= on a constructor fires in core" ~path:core ~rule:"D3"
      "let f x = x = Some 1";
    fires "<> on a list fires in core" ~path:core ~rule:"D3"
      "let f x = x <> []";
    fires "= on a tuple fires in core" ~path:core ~rule:"D3"
      "let f a b = (a, b) = (1, 2)";
    fires "bare polymorphic compare fires in core" ~path:core ~rule:"D3"
      "let f a b = compare a b";
    fires "compare passed higher-order fires in core" ~path:core ~rule:"D3"
      "let sorted xs = List.sort compare xs";
    fires "Hashtbl.hash fires in core" ~path:core ~rule:"D3"
      "let h x = Hashtbl.hash x";
    silent "= against an int literal is scalar" ~path:core "let f x = x = 1";
    silent "= against a string literal is scalar" ~path:core
      "let f x = x = \"tag\"";
    silent "outside core/impl the rule is off" ~path:apps
      "let f x = x = Some 1";
    silent "a file defining its own compare shadows the polymorphic one"
      ~path:core "let compare a b = Int.compare a b\nlet f a b = compare a b";
    downgraded "allow attribute respected" ~path:core ~rule:"D3"
      "let f x = ((x = Some 1) [@gcs.lint.allow \"D3\"])";
  ]

let p1 =
  [
    fires "List.hd fires in lib" ~path:apps ~rule:"P1"
      "let first xs = List.hd xs";
    fires "Option.get fires in lib" ~path:apps ~rule:"P1"
      "let v o = Option.get o";
    fires "Array.unsafe_get fires in lib" ~path:apps ~rule:"P1"
      "let g a = Array.unsafe_get a 0";
    silent "outside lib the rule is off" ~path:"bin/fixture.ml"
      "let first xs = List.hd xs";
    silent "total match is the fix" ~path:apps
      "let first = function x :: _ -> x | [] -> invalid_arg \"empty\"";
    downgraded "allow attribute respected" ~path:apps ~rule:"P1"
      "let first xs = (List.hd xs [@gcs.lint.allow \"P1\"])";
    downgraded "allow payload may list several rules" ~path:apps ~rule:"P1"
      "let first xs = (List.hd xs [@gcs.lint.allow \"D1, P1\"])";
  ]

let p2 =
  [
    fires "catch-all wildcard swallow fires" ~path:apps ~rule:"P2"
      "let f g = try g () with _ -> 0";
    fires "catch-all variable swallow fires" ~path:apps ~rule:"P2"
      "let f g = try g () with e -> ignore e; 0";
    silent "re-raising catch-all is fine" ~path:apps
      "let f g = try g () with e -> raise e";
    silent "specific constructor is fine" ~path:apps
      "let f g = try g () with Not_found -> 0";
    silent "guarded catch-all is a deliberate filter" ~path:apps
      "let f g p = try g () with e when p e -> 0";
    downgraded "allow attribute respected" ~path:apps ~rule:"P2"
      "let f g = ((try g () with _ -> 0) [@gcs.lint.allow \"P2\"])";
  ]

let e0 =
  [
    fires "syntax error reports E0, not an exception" ~path:apps ~rule:"E0"
      "let let = 3";
  ]

(* The linter's own verdict on the real tree: zero live findings. This
   is the test-suite twin of the CI `gcs lint` gate, so a hazard
   introduced without an explicit allow breaks `dune runtest` locally
   long before CI. *)
let self_lint () =
  match Gcs_lint.Driver.find_root () with
  | None -> Alcotest.fail "no dune-project above the test's cwd"
  | Some root ->
      let report = Gcs_lint.Driver.run ~root in
      if report.Gcs_lint.Driver.files = 0 then
        Alcotest.fail "self-lint scanned zero files";
      if not (Gcs_lint.Driver.clean report) then
        Alcotest.failf "repo does not lint clean:\n%s"
          (String.concat "\n"
             (List.map Gcs_lint.Finding.to_string
                report.Gcs_lint.Driver.findings))

let () =
  Alcotest.run "lint"
    [
      ("D1 unordered iteration", d1);
      ("D2 entropy and wall clock", d2);
      ("D3 polymorphic structural ops", d3);
      ("P1 partial stdlib functions", p1);
      ("P2 exception swallowing", p2);
      ("E0 parse failure", e0);
      ( "self-lint",
        [ Alcotest.test_case "repo tree is clean" `Quick self_lint ] );
    ]
