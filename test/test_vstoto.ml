(* Tests for the VStoTO algorithm over the VS-machine specification:
   - the Section 6.1 invariants (Lemmas 6.1-6.24) on random executions,
   - the forward simulation to TO-machine (Lemma 6.25 / Theorem 6.26),
   - acceptance of the client-level trace by the TO trace checker,
   - the Figure 10 label-precondition erratum (see DESIGN.md). *)

open Gcs_automata
open Gcs_core

let procs = Proc.all ~n:4
let p0 = procs
let quorums = Quorum.majorities ~n:4

let params = Vstoto_system.make_params ~procs ~p0 ~quorums ()
let automaton = Vstoto_system.automaton params
let values = [ "a"; "b"; "c"; "d"; "e" ]

let scheduler ?(inject_weight = 0.3) params automaton =
  Scheduler.weighted automaton
    ~inject:(Vstoto_system.inject params ~values)
    ~inject_weight

let run ?(steps = 350) ?(params = params) ?(automaton = automaton) seed =
  Exec.run automaton
    ~scheduler:(scheduler params automaton)
    ~steps
    ~prng:(Gcs_stdx.Prng.create seed)

let seeds = List.init 15 (fun i -> i)

let test_invariants () =
  match
    Invariant.check_random automaton
      ~scheduler:(scheduler params automaton)
      ~seeds ~steps:350
      (Vstoto_invariants.all params)
  with
  | None -> ()
  | Some (v, seed) ->
      Alcotest.failf "%s violated at step %d (seed %d): %s"
        v.Invariant.invariant v.Invariant.step_index seed v.Invariant.detail

let test_forward_simulation () =
  List.iter
    (fun seed ->
      match To_simulation.check_execution params (run seed) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "seed %d: %s" seed msg)
    seeds

let client_trace execution =
  List.filter_map
    (fun action ->
      match action with
      | Sys_action.Bcast (p, a) -> Some (To_action.Bcast (p, a))
      | Sys_action.Brcv { src; dst; value } ->
          Some (To_action.Brcv { src; dst; value })
      | _ -> None)
    (Exec.actions execution)

let test_trace_is_to_trace () =
  let to_params = To_simulation.abstract_params params in
  List.iter
    (fun seed ->
      match To_trace_checker.check to_params (client_trace (run seed)) with
      | Ok () -> ()
      | Error err ->
          Alcotest.failf "seed %d: %s" seed
            (Format.asprintf "%a" To_trace_checker.pp_error err))
    seeds

let count_deliveries execution =
  List.length
    (List.filter
       (function Sys_action.Brcv _ -> true | _ -> false)
       (Exec.actions execution))

let test_progress_happens () =
  (* Sanity: with everyone in one primary view, values actually reach
     clients (the executions are not vacuous). *)
  let total =
    List.fold_left (fun acc seed -> acc + count_deliveries (run seed)) 0 seeds
  in
  Alcotest.(check bool) "some client deliveries occurred" true (total > 0)

let test_view_change_recovery_delivers () =
  (* Drive a specific scenario: send values, then force a view change to a
     smaller primary view, and check the new members still confirm. *)
  let prng = Gcs_stdx.Prng.create 99 in
  let g1 = View_id.make ~num:1 ~origin:0 in
  let v1 = View.make g1 [ 0; 1; 2 ] in
  let injected = ref false in
  let inject state r =
    let base = Vstoto_system.inject params ~values state r in
    if not !injected then begin
      injected := true;
      [ Sys_action.Vs (Vs_action.Createview v1) ]
    end
    else
      List.filter
        (function Sys_action.Vs (Vs_action.Createview _) -> false | _ -> true)
        base
  in
  let sched = Scheduler.weighted automaton ~inject ~inject_weight:0.3 in
  let e = Exec.run automaton ~scheduler:sched ~steps:600 ~prng in
  (match To_simulation.check_execution params e with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "simulation: %s" msg);
  Alcotest.(check bool) "deliveries after view change" true
    (count_deliveries e > 0)

(* ------------------------------------------------------------------ *)
(* Erratum: with the literal Figure 10 precondition on [label] (no
   status=normal requirement), a label created between newview and the
   summary send is both ordered by fullorder at establishment and appended
   again on its later VS delivery, so clients can receive it twice. We
   search adversarial schedules for a violation of TO. *)

let literal_params =
  Vstoto_system.make_params ~literal_figure_10:true ~procs ~p0 ~quorums ()

let literal_automaton = Vstoto_system.automaton literal_params

(* The adversarial schedule: processor 0 labels a client value between
   newview and its summary send, so the label reaches everyone twice —
   once through fullorder at establishment, once through VS delivery. *)
let run_adversarial_schedule automaton =
  let steps = ref [] in
  let state = ref automaton.Automaton.initial in
  let apply action =
    match automaton.Automaton.transition !state action with
    | Some s' ->
        steps := { Exec.pre = !state; action; post = s' } :: !steps;
        state := s';
        true
    | None -> false
  in
  let apply_exn action =
    if not (apply action) then
      Alcotest.failf "schedule action not enabled: %s"
        (Format.asprintf "%a" Sys_action.pp action)
  in
  let apply_matching pred =
    match List.find_opt pred (automaton.Automaton.enabled !state) with
    | Some action -> apply_exn action
    | None -> Alcotest.fail "no matching enabled action"
  in
  let drain pred =
    let rec go () =
      match List.find_opt pred (automaton.Automaton.enabled !state) with
      | Some action ->
          apply_exn action;
          go ()
      | None -> ()
    in
    go ()
  in
  let g1 = View_id.make ~num:1 ~origin:0 in
  let v1 = View.make g1 [ 0; 1; 2 ] in
  apply_exn (Sys_action.Bcast (0, "z"));
  apply_exn (Sys_action.Vs (Vs_action.Createview v1));
  List.iter
    (fun p ->
      apply_matching (function
        | Sys_action.Vs (Vs_action.Newview { proc; view }) ->
            Proc.equal proc p && View.equal view v1
        | _ -> false))
    [ 0; 1; 2 ];
  (* The racy label: only enabled under the literal Figure 10 reading. *)
  let label_fired = apply (Sys_action.Label_act (0, "z")) in
  (* Everything after this point is ordinary progress. *)
  let is_gpsnd = function
    | Sys_action.Vs (Vs_action.Gpsnd _) -> true
    | _ -> false
  and is_order = function
    | Sys_action.Vs (Vs_action.Vs_order _) -> true
    | _ -> false
  and is_gprcv = function
    | Sys_action.Vs (Vs_action.Gprcv _) -> true
    | _ -> false
  and is_safe = function
    | Sys_action.Vs (Vs_action.Safe _) -> true
    | _ -> false
  and is_confirm = function Sys_action.Confirm _ -> true | _ -> false
  and is_brcv = function Sys_action.Brcv _ -> true | _ -> false
  in
  drain is_gpsnd;
  drain is_order;
  drain is_gprcv;
  drain is_safe;
  (* The app message sent after establishment. *)
  drain is_gpsnd;
  drain is_order;
  drain is_gprcv;
  drain is_safe;
  drain is_confirm;
  drain is_brcv;
  let execution =
    { Exec.init = automaton.Automaton.initial; steps = List.rev !steps }
  in
  (label_fired, execution)

let test_literal_figure_10_breaks_to () =
  let label_fired, e = run_adversarial_schedule literal_automaton in
  Alcotest.(check bool) "racy label fired under literal reading" true
    label_fired;
  let to_params = To_simulation.abstract_params literal_params in
  let trace_bad =
    Result.is_error (To_trace_checker.check to_params (client_trace e))
  in
  let sim_bad =
    Result.is_error (To_simulation.check_execution literal_params e)
  in
  Alcotest.(check bool)
    "literal Figure 10 violates TO (double ordering observed)" true
    (trace_bad || sim_bad)

let test_corrected_blocks_racy_label () =
  let label_fired, e = run_adversarial_schedule automaton in
  Alcotest.(check bool) "racy label not enabled when corrected" false
    label_fired;
  let to_params = To_simulation.abstract_params params in
  Alcotest.(check bool) "corrected run satisfies TO" true
    (Result.is_ok (To_trace_checker.check to_params (client_trace e)));
  Alcotest.(check bool) "corrected run simulates TO-machine" true
    (Result.is_ok (To_simulation.check_execution params e))

let test_fixed_label_precondition_sound () =
  (* The same adversarial seeds pass with the corrected precondition. *)
  let tried = List.init 20 (fun i -> 1000 + i) in
  List.iter
    (fun seed ->
      match To_simulation.check_execution params (run ~steps:500 seed) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "seed %d: %s" seed msg)
    tried

(* Pipelining (DESIGN.md "Throughput engineering"): with
   [params.pipeline], labelling and application gpsnd/gprcv are also
   allowed during the collect phase of a state exchange; received
   application messages are held back and applied at establishment. The
   refinement must preserve the Section 6 invariants, the forward
   simulation, and TO at the trace level — under schedules with view
   changes, which is where pipelining actually fires. *)

let pipeline_params =
  Vstoto_system.make_params ~pipeline:true ~procs ~p0 ~quorums ()

let pipeline_automaton = Vstoto_system.automaton pipeline_params

let run_pipeline ?(steps = 350) seed =
  Exec.run pipeline_automaton
    ~scheduler:(scheduler pipeline_params pipeline_automaton)
    ~steps
    ~prng:(Gcs_stdx.Prng.create seed)

let test_pipeline_invariants () =
  match
    Invariant.check_random pipeline_automaton
      ~scheduler:(scheduler pipeline_params pipeline_automaton)
      ~seeds ~steps:350
      (Vstoto_invariants.all pipeline_params)
  with
  | None -> ()
  | Some (v, seed) ->
      Alcotest.failf "pipeline: %s violated at step %d (seed %d): %s"
        v.Invariant.invariant v.Invariant.step_index seed v.Invariant.detail

let test_pipeline_simulation_and_trace () =
  let to_params = To_simulation.abstract_params pipeline_params in
  List.iter
    (fun seed ->
      let e = run_pipeline ~steps:500 seed in
      (match To_simulation.check_execution pipeline_params e with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "pipeline seed %d: %s" seed msg);
      match To_trace_checker.check to_params (client_trace e) with
      | Ok () -> ()
      | Error err ->
          Alcotest.failf "pipeline seed %d: %s" seed
            (Format.asprintf "%a" To_trace_checker.pp_error err))
    seeds

let test_pipeline_progress () =
  let total =
    List.fold_left
      (fun acc seed -> acc + count_deliveries (run_pipeline seed))
      0 seeds
  in
  Alcotest.(check bool) "pipelined runs deliver" true (total > 0)

(* Section 4.1 Remark: WeakVS-machine and VS-machine have the same finite
   traces, so the VStoTO safety results hold over WeakVS too. We compose
   with the weak machine, inject createviews with out-of-order
   identifiers, and re-check the invariants and the simulation. *)
let weak_params =
  Vstoto_system.make_params ~weak_vs:true ~procs ~p0 ~quorums ()

let weak_automaton = Vstoto_system.automaton weak_params

let weak_inject state prng =
  let base = Vstoto_system.inject weak_params ~values state prng in
  let no_createviews =
    List.filter
      (function Sys_action.Vs (Vs_action.Createview _) -> false | _ -> true)
      base
  in
  (* Propose ids anywhere in 1..8, so creation order is scrambled. *)
  let num = Gcs_stdx.Prng.int_in prng 1 8 in
  let origin = Gcs_stdx.Prng.pick_exn prng procs in
  let members =
    match Gcs_stdx.Prng.subset prng procs with [] -> [ origin ] | l -> l
  in
  Sys_action.Vs
    (Vs_action.Createview (View.make (View_id.make ~num ~origin) members))
  :: no_createviews

let run_weak seed =
  let sched = Scheduler.weighted weak_automaton ~inject:weak_inject ~inject_weight:0.3 in
  Exec.run weak_automaton ~scheduler:sched ~steps:350
    ~prng:(Gcs_stdx.Prng.create seed)

let test_weak_vs_composition () =
  List.iter
    (fun seed ->
      let e = run_weak seed in
      (match
         Invariant.first_violation (Vstoto_invariants.all weak_params) e
       with
      | None -> ()
      | Some v ->
          Alcotest.failf "weak seed %d: %s at step %d: %s" seed
            v.Invariant.invariant v.Invariant.step_index v.Invariant.detail);
      match To_simulation.check_execution weak_params e with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "weak seed %d: %s" seed msg)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let prop_invariants_hold =
  QCheck.Test.make ~name:"Section 6 invariants on random executions" ~count:10
    QCheck.small_nat
    (fun seed ->
      Invariant.first_violation (Vstoto_invariants.all params)
        (run ~steps:250 (seed + 500))
      = None)

let () =
  Alcotest.run "vstoto"
    [
      ( "safety",
        [
          Alcotest.test_case "Lemmas 6.1-6.24 invariants" `Slow test_invariants;
          Alcotest.test_case "forward simulation (Lemma 6.25)" `Quick
            test_forward_simulation;
          Alcotest.test_case "client trace is a TO trace (Thm 6.26)" `Quick
            test_trace_is_to_trace;
          Alcotest.test_case "progress happens" `Quick test_progress_happens;
          Alcotest.test_case "recovery after view change" `Quick
            test_view_change_recovery_delivers;
          Alcotest.test_case "WeakVS composition (4.1 Remark)" `Slow
            test_weak_vs_composition;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "invariants hold with pipelining" `Slow
            test_pipeline_invariants;
          Alcotest.test_case "simulation + TO trace with pipelining" `Quick
            test_pipeline_simulation_and_trace;
          Alcotest.test_case "pipelined runs deliver" `Quick
            test_pipeline_progress;
        ] );
      ( "erratum",
        [
          Alcotest.test_case "literal Figure 10 breaks TO" `Quick
            test_literal_figure_10_breaks_to;
          Alcotest.test_case "corrected precondition blocks the race" `Quick
            test_corrected_blocks_racy_label;
          Alcotest.test_case "corrected precondition is sound" `Slow
            test_fixed_label_precondition_sound;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_invariants_hold ]);
    ]
