(* The fuzzer's own regression suite: input round-trips, determinism
   across job counts, shrinker soundness, and the planted-bug gauntlet
   (every mutant in [Mutant.all] must be found within a bounded budget
   and shrunk to a small reproducer blaming an expected check). *)

open Gcs_core
open Gcs_impl
open Gcs_nemesis
open Gcs_fuzz

let n = 4
let procs = Proc.all ~n
let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
let config = To_service.make_config vs_config

(* ------------------------- input round-trip ------------------------- *)

let roundtrip name input =
  let text = Input.to_string input in
  match Input.of_string text with
  | Error e -> Alcotest.failf "%s: parse failed: %s" name e
  | Ok back ->
      Alcotest.(check string)
        (name ^ " round-trips") text (Input.to_string back)

let test_roundtrip_basic () =
  roundtrip "basic"
    (Input.normalize
       {
         Input.seed = 42;
         steps =
           [
             { Scenario.at = 20.0; op = Scenario.Partition [ [ 0; 1 ]; [ 2; 3 ] ] };
             { Scenario.at = 60.0; op = Scenario.Heal };
             { Scenario.at = 30.0; op = Scenario.Crash 2 };
             { Scenario.at = 45.0; op = Scenario.Recover 2 };
             { Scenario.at = 50.0; op = Scenario.Degrade (0, 3, Fstatus.Ugly) };
             { Scenario.at = 52.0; op = Scenario.Slow 1 };
             { Scenario.at = 58.0; op = Scenario.Wake 1 };
           ];
         workload = [ (25.0, 0, "hello"); (26.0, 1, "world") ];
       })

(* Values with every character the escape layer must protect: spaces,
   newlines, percent signs, and the separator characters of the format
   itself. *)
let test_roundtrip_escapes () =
  roundtrip "escape-heavy"
    (Input.normalize
       {
         Input.seed = 0;
         steps = [];
         workload =
           [
             (10.0, 0, "with space");
             (11.0, 1, "line\nbreak");
             (12.0, 2, "100%sure");
             (13.0, 3, "a,b/c d");
             (14.0, 0, "");
           ];
       })

let test_roundtrip_empty () =
  roundtrip "empty" (Input.normalize { Input.seed = 7; steps = []; workload = [] })

let test_parse_comments () =
  match Input.of_string "# comment\n\nseed 3\nload 10.000000 1 v\n" with
  | Error e -> Alcotest.failf "comment parse failed: %s" e
  | Ok t ->
      Alcotest.(check int) "seed" 3 t.Input.seed;
      Alcotest.(check int) "events" 1 (Input.events t)

let test_parse_garbage () =
  (match Input.of_string "sneed 3\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown directive");
  match Input.of_string "step notatime heal\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unparseable time"

(* --------------------------- determinism ---------------------------- *)

(* Same seed, different job counts: the corpus, coverage cardinality and
   summary stats must be byte-identical. This is the property the
   `--jobs` flag advertises; it holds because candidates are generated
   sequentially and results folded in input order. *)
let test_determinism_across_jobs () =
  let run jobs = Fuzz.run ~jobs ~config ~seed:11 ~execs:120 () in
  let a = run 1 and b = run 4 in
  Alcotest.(check string)
    "stats equal" (Fuzz.stats_to_json a) (Fuzz.stats_to_json b);
  Alcotest.(check (list string))
    "corpus equal" (Fuzz.corpus_strings a) (Fuzz.corpus_strings b)

let test_determinism_across_runs () =
  let run () = Fuzz.run ~jobs:2 ~config ~seed:23 ~execs:80 () in
  Alcotest.(check string)
    "repeat run equal"
    (Fuzz.stats_to_json (run ()))
    (Fuzz.stats_to_json (run ()))

(* A clean build must not self-accuse: with no mutant planted, a modest
   budget of fuzzing finds no failure. *)
let test_no_false_positives () =
  let outcome = Fuzz.run ~jobs:2 ~config ~seed:5 ~execs:150 () in
  match outcome.Fuzz.failure with
  | None -> ()
  | Some (input, f) ->
      Alcotest.failf "clean run failed %s on:\n%s" f.Runner.check
        (Input.to_string input)

(* The same clean-build property with batching on: schedule fuzzing over
   the batched gpsnd path (Msg.Batch formation, element-wise delivery,
   the staging flush timer) must not trip any oracle either. *)
let test_no_false_positives_batched () =
  let batched_config = To_service.make_config ~batch_window:2.0 vs_config in
  let outcome = Fuzz.run ~jobs:2 ~config:batched_config ~seed:5 ~execs:150 () in
  match outcome.Fuzz.failure with
  | None -> ()
  | Some (input, f) ->
      Alcotest.failf "batched clean run failed %s on:\n%s" f.Runner.check
        (Input.to_string input)

(* The Skeen service on the same inputs: a clean build must pass its
   oracle chain (group order, node invariants, fault-free completeness)
   across a modest fuzz budget. *)
let test_no_false_positives_skeen () =
  let outcome =
    Fuzz.run ~service:Fuzz.Skeen_backend ~jobs:2 ~config ~seed:5 ~execs:150 ()
  in
  match outcome.Fuzz.failure with
  | None -> ()
  | Some (input, f) ->
      Alcotest.failf "clean skeen run failed %s on:\n%s" f.Runner.check
        (Input.to_string input)

(* ------------------------- planted bugs ----------------------------- *)

let find_and_shrink mutant =
  Fuzz.run ~mutant ~jobs:2 ~config ~seed:7 ~execs:800 ~shrink_budget:400 ()

let find_and_shrink_skeen skeen_mutant =
  Fuzz.run ~skeen_mutant ~jobs:2 ~config ~seed:7 ~execs:800 ~shrink_budget:400
    ()

let test_skeen_mutant m () =
  let outcome = find_and_shrink_skeen m in
  match (outcome.Fuzz.failure, outcome.Fuzz.shrunk) with
  | None, _ ->
      Alcotest.failf "skeen mutant %s not found within budget"
        m.Skeen_mutant.name
  | Some _, None ->
      Alcotest.failf "skeen mutant %s found but not shrunk" m.Skeen_mutant.name
  | Some (original, f), Some s ->
      if not (List.mem f.Runner.check m.Skeen_mutant.expected_checks) then
        Alcotest.failf "skeen mutant %s blamed %s (expected one of: %s)"
          m.Skeen_mutant.name f.Runner.check
          (String.concat ", " m.Skeen_mutant.expected_checks);
      let before = Input.events original
      and after = Input.events s.Shrink.input in
      if after > before then
        Alcotest.failf "skeen mutant %s: shrink grew %d -> %d events"
          m.Skeen_mutant.name before after;
      if after > 25 then
        Alcotest.failf "skeen mutant %s: shrunk repro still has %d events"
          m.Skeen_mutant.name after;
      Alcotest.(check string)
        "shrunk failure check" f.Runner.check s.Shrink.failure.Runner.check

let test_mutant m () =
  let outcome = find_and_shrink m in
  match (outcome.Fuzz.failure, outcome.Fuzz.shrunk) with
  | None, _ ->
      Alcotest.failf "mutant %s not found within budget" m.Mutant.name
  | Some _, None -> Alcotest.failf "mutant %s found but not shrunk" m.Mutant.name
  | Some (original, f), Some s ->
      if not (List.mem f.Runner.check m.Mutant.expected_checks) then
        Alcotest.failf "mutant %s blamed %s (expected one of: %s)"
          m.Mutant.name f.Runner.check
          (String.concat ", " m.Mutant.expected_checks);
      (* The shrinker must not grow the input, must stay under the
         ISSUE's 25-event reproducer bound, and must preserve the check
         being blamed. *)
      let before = Input.events original
      and after = Input.events s.Shrink.input in
      if after > before then
        Alcotest.failf "mutant %s: shrink grew %d -> %d events" m.Mutant.name
          before after;
      if after > 25 then
        Alcotest.failf "mutant %s: shrunk repro still has %d events"
          m.Mutant.name after;
      Alcotest.(check string)
        "shrunk failure check" f.Runner.check s.Shrink.failure.Runner.check

(* ----------------------- shrinker soundness ------------------------- *)

(* The shrunk reproducer must actually fail when re-executed from its
   serialized form — i.e. shrinking composed with round-tripping is
   sound, which is exactly what `gcs fuzz --replay repro.sched` does. *)
let test_shrunk_repro_fails () =
  let m = List.hd Mutant.all in
  let outcome = find_and_shrink m in
  match outcome.Fuzz.shrunk with
  | None -> Alcotest.fail "no shrunk reproducer"
  | Some s -> (
      let text = Input.to_string s.Shrink.input in
      match Input.of_string text with
      | Error e -> Alcotest.failf "repro does not parse: %s" e
      | Ok input -> (
          match
            Runner.oracle ~mutant:m ~config
              ~check:s.Shrink.failure.Runner.check input
          with
          | Some _ -> ()
          | None ->
              Alcotest.failf "shrunk repro no longer fails:\n%s" text))

(* Removing any further single event from the minimized reproducer must
   lose the failure (1-minimality modulo the oracle) OR keep it failing
   the same check — never flip to a different check. In practice the
   shrinker runs to a fixpoint of its deletion pass, so a further
   single-event deletion that still fails would contradict termination;
   we assert the weaker, stable property that no deletion changes the
   blamed check. *)
let test_shrunk_repro_stable () =
  let m = List.hd Mutant.all in
  let outcome = find_and_shrink m in
  match outcome.Fuzz.shrunk with
  | None -> Alcotest.fail "no shrunk reproducer"
  | Some s ->
      let input = s.Shrink.input in
      let check = s.Shrink.failure.Runner.check in
      let drop_step i =
        Input.normalize
          {
            input with
            Input.steps = List.filteri (fun k _ -> k <> i) input.Input.steps;
          }
      in
      let drop_load i =
        Input.normalize
          {
            input with
            Input.workload =
              List.filteri (fun k _ -> k <> i) input.Input.workload;
          }
      in
      let candidates =
        List.init (List.length input.Input.steps) drop_step
        @ List.init (List.length input.Input.workload) drop_load
      in
      List.iter
        (fun candidate ->
          match Runner.oracle ~mutant:m ~config ~check candidate with
          | Some _ ->
              (* Still fails the same check after a deletion the shrinker
                 should have taken: the deletion pass did not reach its
                 fixpoint. *)
              Alcotest.failf "shrunk repro not 1-minimal for %s" check
          | None -> ())
        candidates

(* --------------------------- registration --------------------------- *)

let mutant_cases =
  List.map
    (fun m ->
      Alcotest.test_case (m.Mutant.name ^ " found and shrunk") `Slow
        (test_mutant m))
    Mutant.all
  @ List.map
      (fun m ->
        Alcotest.test_case (m.Skeen_mutant.name ^ " found and shrunk") `Slow
          (test_skeen_mutant m))
      Skeen_mutant.all

let () =
  Alcotest.run "fuzz"
    [
      ( "input",
        [
          Alcotest.test_case "round-trip basic" `Quick test_roundtrip_basic;
          Alcotest.test_case "round-trip escapes" `Quick test_roundtrip_escapes;
          Alcotest.test_case "round-trip empty" `Quick test_roundtrip_empty;
          Alcotest.test_case "comments and blanks" `Quick test_parse_comments;
          Alcotest.test_case "garbage rejected" `Quick test_parse_garbage;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 = jobs 4" `Quick
            test_determinism_across_jobs;
          Alcotest.test_case "repeat runs equal" `Quick
            test_determinism_across_runs;
          Alcotest.test_case "no false positives" `Quick
            test_no_false_positives;
          Alcotest.test_case "no false positives (batched)" `Quick
            test_no_false_positives_batched;
          Alcotest.test_case "no false positives (skeen)" `Quick
            test_no_false_positives_skeen;
        ] );
      ("planted", mutant_cases);
      ( "shrink",
        [
          Alcotest.test_case "shrunk repro still fails" `Slow
            test_shrunk_repro_fails;
          Alcotest.test_case "shrunk repro 1-minimal" `Slow
            test_shrunk_repro_stable;
        ] );
    ]
