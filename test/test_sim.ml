(* Tests for the discrete-event simulator: the event queue, delivery
   semantics under good/bad/ugly statuses, timers, and determinism. *)

open Gcs_core
open Gcs_sim

(* ---------------- event queue ---------------- *)

let test_queue_order () =
  let q = Event_queue.empty in
  let q = Event_queue.add q ~time:3.0 "c" in
  let q = Event_queue.add q ~time:1.0 "a" in
  let q = Event_queue.add q ~time:2.0 "b" in
  let rec drain q acc =
    match Event_queue.pop q with
    | Some (_, v, q) -> drain q (v :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (drain q [])

let test_queue_fifo_ties () =
  let q = Event_queue.empty in
  let q = Event_queue.add q ~time:1.0 "first" in
  let q = Event_queue.add q ~time:1.0 "second" in
  let q = Event_queue.add q ~time:1.0 "third" in
  let rec drain q acc =
    match Event_queue.pop q with
    | Some (_, v, q) -> drain q (v :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list string)) "FIFO among equal times"
    [ "first"; "second"; "third" ] (drain q [])

let test_queue_size () =
  let q = Event_queue.add (Event_queue.add Event_queue.empty ~time:1.0 1) ~time:2.0 2 in
  Alcotest.(check int) "size" 2 (Event_queue.size q);
  Alcotest.(check (option (float 0.001))) "peek" (Some 1.0) (Event_queue.peek_time q)

let test_queue_interleaved () =
  (* Interleave adds and pops and track the size invariant at every step;
     pops must still come out in (time, insertion-seq) order relative to
     what is in the queue at that moment. *)
  let q = Event_queue.empty in
  let q = Event_queue.add q ~time:5.0 "e5" in
  let q = Event_queue.add q ~time:1.0 "e1" in
  Alcotest.(check int) "size after 2 adds" 2 (Event_queue.size q);
  let t, v, q =
    match Event_queue.pop q with Some x -> x | None -> Alcotest.fail "pop 1"
  in
  Alcotest.(check (float 0.001)) "earliest first" 1.0 t;
  Alcotest.(check string) "earliest value" "e1" v;
  Alcotest.(check int) "size after pop" 1 (Event_queue.size q);
  (* An element added after a pop can still overtake older residents. *)
  let q = Event_queue.add q ~time:2.0 "e2" in
  let q = Event_queue.add q ~time:5.0 "e5b" in
  Alcotest.(check int) "size after re-adds" 3 (Event_queue.size q);
  let order =
    let rec drain q acc =
      match Event_queue.pop q with
      | Some (_, v, q) -> drain q (v :: acc)
      | None -> List.rev acc
    in
    drain q []
  in
  (* e5 was inserted before e5b, so the seq tiebreak keeps them in
     insertion order at equal times. *)
  Alcotest.(check (list string)) "pop order" [ "e2"; "e5"; "e5b" ] order;
  Alcotest.(check bool) "drained queue is empty" true
    (Event_queue.is_empty
       (let rec strip q =
          match Event_queue.pop q with Some (_, _, q) -> strip q | None -> q
        in
        strip q))

let prop_queue_interleaved_model =
  (* Random interleaving of add/pop against a sorted-list model: size
     matches at every step and pops agree with the model's minimum
     (stable on ties by insertion order). *)
  QCheck.Test.make ~name:"event queue matches a sorted-list model under interleaved add/pop"
    ~count:300
    QCheck.(list (option (int_bound 50)))
    (fun ops ->
      let step (q, model, seq, ok) op =
        if not ok then (q, model, seq, false)
        else
          match op with
          | Some t_int ->
              let t = float_of_int t_int in
              ( Event_queue.add q ~time:t (seq : int),
                model @ [ (t, seq) ],
                seq + 1,
                Event_queue.size q + 1
                = Event_queue.size (Event_queue.add q ~time:t seq) )
          | None -> (
              let sorted =
                List.stable_sort
                  (fun (t1, _) (t2, _) -> Float.compare t1 t2)
                  model
              in
              match (Event_queue.pop q, sorted) with
              | None, [] -> (q, model, seq, true)
              | Some (t, v, q'), (mt, mv) :: _ ->
                  ( q',
                    List.filter (fun (_, s) -> s <> mv) model,
                    seq,
                    t = mt && v = mv )
              | Some _, [] | None, _ :: _ -> (q, model, seq, false))
      in
      let q, model, _, ok =
        List.fold_left step (Event_queue.empty, [], 0, true) ops
      in
      ok && Event_queue.size q = List.length model)

let prop_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in nondecreasing time order"
    ~count:200
    QCheck.(list (pair (float_bound_exclusive 100.0) small_int))
    (fun events ->
      let q =
        List.fold_left
          (fun q (t, v) -> Event_queue.add q ~time:t v)
          Event_queue.empty events
      in
      let rec drain q acc =
        match Event_queue.pop q with
        | Some (t, _, q) -> drain q (t :: acc)
        | None -> List.rev acc
      in
      let times = drain q [] in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | [] | [ _ ] -> true
      in
      List.length times = List.length events && nondecreasing times)

(* ---------------- a ping-pong node for engine tests ---------------- *)

type packet = Ping of int | Pong of int

(* Node 0 pings node 1 every 5 time units with an incrementing round
   number; node 1 pongs back. Outputs record each pong received. *)
let handlers : (int, unit, packet, int) Engine.handlers =
  let on_start me state =
    if me = 0 then (state, [ Engine.Set_timer { id = 1; delay = 5.0 } ])
    else (state, [])
  in
  let on_input _me ~now:_ () state = (state, []) in
  let on_packet me ~now:_ ~src packet state =
    match packet with
    | Ping k when me = 1 ->
        (state, [ Engine.Send { dst = src; packet = Pong k } ])
    | Pong k when me = 0 -> (state, [ Engine.Output k ])
    | Ping _ | Pong _ -> (state, [])
  in
  let on_timer me ~now:_ ~id state =
    if me = 0 && id = 1 then
      ( state + 1,
        [
          Engine.Send { dst = 1; packet = Ping state };
          Engine.Set_timer { id = 1; delay = 5.0 };
        ] )
    else (state, [])
  in
  { Engine.on_start; on_input; on_packet; on_timer }

let run_pingpong ?(failures = []) ?(until = 52.0) ?(seed = 1) () =
  Engine.run
    (Engine.default_config ~delta:1.0)
    ~procs:[ 0; 1 ] ~handlers
    ~init:(fun _ -> 0)
    ~inputs:[] ~failures ~until
    ~prng:(Gcs_stdx.Prng.create seed)

let pongs result =
  List.map snd (Timed.actions result.Engine.trace)

let test_pingpong_good () =
  let result = run_pingpong () in
  (* Ten pings in 52 time units; all complete within 2 deltas. *)
  Alcotest.(check (list int)) "all rounds complete in order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (pongs result)

let test_bad_link_drops () =
  let failures = [ (12.0, Fstatus.Link_status (0, 1, Fstatus.Bad)) ] in
  let result = run_pingpong ~failures () in
  Alcotest.(check bool) "rounds stop after the cut" true
    (List.length (pongs result) <= 3)

let test_bad_processor_holds_and_replays () =
  (* Node 1 crashes at t=12 and recovers at t=30: held pings are replayed
     on recovery, so no round is lost. *)
  let failures =
    [
      (12.0, Fstatus.Proc_status (1, Fstatus.Bad));
      (30.0, Fstatus.Proc_status (1, Fstatus.Good));
    ]
  in
  let result = run_pingpong ~failures () in
  (* Links are not FIFO (each packet draws its own delay within delta), so
     replayed rounds may overtake each other; none may be lost. *)
  Alcotest.(check (list int)) "all rounds eventually complete"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.sort Int.compare (pongs result))

let test_ugly_link_loses_some () =
  let failures = [ (0.0, Fstatus.Link_status (0, 1, Fstatus.Ugly)) ] in
  let result = run_pingpong ~failures ~until:200.0 () in
  let n = List.length (pongs result) in
  Alcotest.(check bool)
    (Printf.sprintf "ugly link delivers some but not all (%d)" n)
    true
    (n > 0 && n < 40)

let test_determinism () =
  let r1 = run_pingpong ~seed:7 () and r2 = run_pingpong ~seed:7 () in
  Alcotest.(check (list int)) "same seed, same trace" (pongs r1) (pongs r2)

let test_timer_cancel () =
  (* A node arms a timer then cancels it; the timer must not fire. *)
  let handlers : (int, unit, unit, string) Engine.handlers =
    {
      Engine.on_start =
        (fun _me state ->
          ( state,
            [
              Engine.Set_timer { id = 9; delay = 5.0 };
              Engine.Cancel_timer { id = 9 };
              Engine.Set_timer { id = 10; delay = 7.0 };
            ] ));
      on_input = (fun _ ~now:_ () s -> (s, []));
      on_packet = (fun _ ~now:_ ~src:_ () s -> (s, []));
      on_timer =
        (fun _ ~now:_ ~id s ->
          (s, [ Engine.Output (Printf.sprintf "timer-%d" id) ]));
    }
  in
  let result =
    Engine.run
      (Engine.default_config ~delta:1.0)
      ~procs:[ 0 ] ~handlers
      ~init:(fun _ -> 0)
      ~inputs:[] ~failures:[] ~until:20.0
      ~prng:(Gcs_stdx.Prng.create 1)
  in
  Alcotest.(check (list string)) "only the un-cancelled timer fired"
    [ "timer-10" ]
    (List.map snd (Timed.actions result.Engine.trace))

let test_timer_rearm_supersedes () =
  (* Re-arming a timer id supersedes the earlier deadline. *)
  let handlers : (int, unit, unit, float) Engine.handlers =
    {
      Engine.on_start =
        (fun _me state ->
          ( state,
            [
              Engine.Set_timer { id = 1; delay = 3.0 };
              Engine.Set_timer { id = 1; delay = 8.0 };
            ] ));
      on_input = (fun _ ~now:_ () s -> (s, []));
      on_packet = (fun _ ~now:_ ~src:_ () s -> (s, []));
      on_timer = (fun _ ~now ~id:_ s -> (s, [ Engine.Output now ]));
    }
  in
  let result =
    Engine.run
      (Engine.default_config ~delta:1.0)
      ~procs:[ 0 ] ~handlers
      ~init:(fun _ -> 0)
      ~inputs:[] ~failures:[] ~until:20.0
      ~prng:(Gcs_stdx.Prng.create 1)
  in
  match Timed.actions result.Engine.trace with
  | [ (_, fired_at) ] ->
      Alcotest.(check (float 0.01)) "fired at the re-armed time" 8.0 fired_at
  | other ->
      Alcotest.failf "expected exactly one firing, got %d" (List.length other)

let test_good_link_delay_bound () =
  (* Every delivery in a good network happens within delta of the send. *)
  let result = run_pingpong ~until:100.0 () in
  let times = List.map fst (Timed.actions result.Engine.trace) in
  (* Pings go out at 5,10,...; a pong requires 2 hops, each <= 1.0. *)
  List.iter
    (fun t ->
      let slot = Float.rem t 5.0 in
      Alcotest.(check bool)
        (Printf.sprintf "pong at %.2f within 2 deltas of a ping" t)
        true
        (slot <= 2.0))
    times

let test_fifo_links () =
  (* A burst of packets on one link: with fifo on, arrival order matches
     send order despite jittered delays. *)
  let handlers : (int, unit, int, int) Engine.handlers =
    {
      Engine.on_start =
        (fun me state ->
          if me = 0 then
            (state, List.init 20 (fun k -> Engine.Send { dst = 1; packet = k }))
          else (state, []));
      on_input = (fun _ ~now:_ () s -> (s, []));
      on_packet = (fun _ ~now:_ ~src:_ k s -> (s, [ Engine.Output k ]));
      on_timer = (fun _ ~now:_ ~id:_ s -> (s, []));
    }
  in
  let run fifo seed =
    let config = { (Engine.default_config ~delta:1.0) with Engine.fifo } in
    let result =
      Engine.run config ~procs:[ 0; 1 ] ~handlers
        ~init:(fun _ -> 0)
        ~inputs:[] ~failures:[] ~until:50.0
        ~prng:(Gcs_stdx.Prng.create seed)
    in
    List.map snd (Timed.actions result.Engine.trace)
  in
  let expected = List.init 20 (fun k -> k) in
  List.iter
    (fun seed ->
      Alcotest.(check (list int)) "fifo preserves order" expected
        (run true seed))
    [ 1; 2; 3; 4; 5 ];
  (* Sanity: without fifo some seed reorders (otherwise the option is
     untestable). *)
  Alcotest.(check bool) "jittered links reorder without fifo" true
    (List.exists (fun seed -> run false seed <> expected) [ 1; 2; 3; 4; 5 ])

(* ---------------- fifo_links regressions ---------------- *)

(* A burst of numbered packets 0 -> 1 sent at start; outputs record the
   arrival order at 1. *)
let burst_handlers count : (int, unit, int, int) Engine.handlers =
  {
    Engine.on_start =
      (fun me state ->
        if me = 0 then
          (state, List.init count (fun k -> Engine.Send { dst = 1; packet = k }))
        else (state, []));
    on_input = (fun _ ~now:_ () s -> (s, []));
    on_packet = (fun _ ~now:_ ~src:_ k s -> (s, [ Engine.Output k ]));
    on_timer = (fun _ ~now:_ ~id:_ s -> (s, []));
  }

let run_burst ?(count = 20) ~fifo ~failures ~seed () =
  let config =
    {
      (Engine.default_config ~delta:1.0) with
      Engine.fifo;
      (* ugly links delay but never drop, so order is observable *)
      ugly_drop_prob = 0.0;
    }
  in
  let result =
    Engine.run config ~procs:[ 0; 1 ] ~handlers:(burst_handlers count)
      ~init:(fun _ -> 0)
      ~inputs:[] ~failures ~until:100.0
      ~prng:(Gcs_stdx.Prng.create seed)
  in
  result.Engine.trace

let seeds = [ 1; 2; 3; 4; 5; 6; 7 ]

let test_fifo_ugly_link_order () =
  (* With FIFO on, per-link delivery order matches send order even though
     an ugly link draws an arbitrary extra delay per packet. *)
  let failures = [ (0.0, Fstatus.Link_status (0, 1, Fstatus.Ugly)) ] in
  let expected = List.init 20 (fun k -> k) in
  let arrivals fifo seed =
    List.map snd (Timed.actions (run_burst ~fifo ~failures ~seed ()))
  in
  List.iter
    (fun seed ->
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: fifo holds on ugly link" seed)
        expected (arrivals true seed))
    seeds;
  Alcotest.(check bool) "without fifo the ugly link reorders" true
    (List.exists (fun seed -> arrivals false seed <> expected) seeds)

let test_fifo_ugly_proc_order () =
  (* Same guarantee when the extra delay comes from an ugly DESTINATION
     processor (each held event is re-scheduled once with a random
     delay): fifo mode must preserve arrival order. *)
  let failures = [ (0.0, Fstatus.Proc_status (1, Fstatus.Ugly)) ] in
  let expected = List.init 20 (fun k -> k) in
  let arrivals fifo seed =
    List.map snd (Timed.actions (run_burst ~fifo ~failures ~seed ()))
  in
  List.iter
    (fun seed ->
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: fifo holds at ugly processor" seed)
        expected (arrivals true seed))
    seeds;
  Alcotest.(check bool) "without fifo the ugly processor reorders" true
    (List.exists (fun seed -> arrivals false seed <> expected) seeds)

let test_nofifo_delta_bound () =
  (* With FIFO off on good links, the only guarantee is the delay bound:
     every packet arrives within delta of its send (all sends at t=0). *)
  List.iter
    (fun seed ->
      let trace = run_burst ~fifo:false ~failures:[] ~seed () in
      List.iter
        (fun (t, k) ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: packet %d within delta (t=%.3f)" seed k t)
            true
            (t <= 1.0))
        (Timed.actions trace);
      Alcotest.(check int) "nothing lost" 20
        (List.length (Timed.actions trace)))
    seeds

let test_ugly_never_beats_good () =
  (* Regression: the ugly-link delay is sampled from
     [0, ugly_delay_max), which with jitter on could undercut the good
     links' (delta/2, delta] window — a degraded link must never deliver
     faster than a good one. All sends happen at t=0, so every arrival on
     the ugly link must be at or after delta/2. *)
  let failures = [ (0.0, Fstatus.Link_status (0, 1, Fstatus.Ugly)) ] in
  List.iter
    (fun seed ->
      let config =
        {
          (Engine.default_config ~delta:1.0) with
          Engine.jitter = true;
          ugly_drop_prob = 0.0;
        }
      in
      let result =
        Engine.run config ~procs:[ 0; 1 ] ~handlers:(burst_handlers 50)
          ~init:(fun _ -> 0)
          ~inputs:[] ~failures ~until:100.0
          ~prng:(Gcs_stdx.Prng.create seed)
      in
      List.iter
        (fun (t, k) ->
          Alcotest.(check bool)
            (Printf.sprintf
               "seed %d: ugly delivery of %d at t=%.4f not before delta/2" seed
               k t)
            true (t >= 0.5))
        (Timed.actions result.Engine.trace);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: nothing lost" seed)
        50
        (List.length (Timed.actions result.Engine.trace)))
    seeds

let test_engine_metrics_counters () =
  (* The published registry agrees with the result record's counters. *)
  let metrics = Gcs_stdx.Metrics.create () in
  let failures = [ (10.0, Fstatus.Link_status (0, 1, Fstatus.Bad)) ] in
  let result =
    Engine.run ~metrics
      (Engine.default_config ~delta:1.0)
      ~procs:[ 0; 1 ] ~handlers
      ~init:(fun _ -> 0)
      ~inputs:[] ~failures ~until:52.0
      ~prng:(Gcs_stdx.Prng.create 1)
  in
  let c name = Gcs_stdx.Metrics.counter metrics name in
  Alcotest.(check int) "events" result.Engine.events_processed
    (c "engine.events_processed");
  Alcotest.(check int) "sent" result.Engine.packets_sent
    (c "engine.packets_sent");
  Alcotest.(check int) "dropped" result.Engine.packets_dropped
    (c "engine.packets_dropped");
  Alcotest.(check int) "statuses" result.Engine.statuses_applied
    (c "engine.statuses_applied");
  (* packets_sent counts every send attempt; the per-status splits plus
     the drops partition it. *)
  Alcotest.(check int) "status splits partition the sends"
    (c "engine.packets_sent")
    (c "engine.packets_sent.good" + c "engine.packets_sent.self"
    + c "engine.packets_sent.ugly" + c "engine.packets_dropped");
  Alcotest.(check bool) "same registry is returned" true
    (result.Engine.metrics == metrics);
  Alcotest.(check bool) "queue depth high-water recorded" true
    (match Gcs_stdx.Metrics.gauge metrics "engine.queue_depth.max" with
    | Some d -> d >= 1.0
    | None -> false)

let test_statuses_applied_counted () =
  let failures =
    [
      (1.0, Fstatus.Link_status (0, 1, Fstatus.Bad));
      (2.0, Fstatus.Link_status (0, 1, Fstatus.Good));
    ]
  in
  let config = Engine.default_config ~delta:1.0 in
  let result =
    Engine.run config ~procs:[ 0; 1 ] ~handlers:(burst_handlers 0)
      ~init:(fun _ -> 0)
      ~inputs:[] ~failures ~until:10.0
      ~prng:(Gcs_stdx.Prng.create 1)
  in
  Alcotest.(check int) "statuses applied" 2 result.Engine.statuses_applied

let () =
  Alcotest.run "sim"
    [
      ( "event queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_order;
          Alcotest.test_case "FIFO ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "size and peek" `Quick test_queue_size;
          Alcotest.test_case "interleaved add/pop" `Quick test_queue_interleaved;
          QCheck_alcotest.to_alcotest prop_queue_sorted;
          QCheck_alcotest.to_alcotest prop_queue_interleaved_model;
        ] );
      ( "engine",
        [
          Alcotest.test_case "good network ping-pong" `Quick test_pingpong_good;
          Alcotest.test_case "bad link drops" `Quick test_bad_link_drops;
          Alcotest.test_case "bad processor holds and replays" `Quick
            test_bad_processor_holds_and_replays;
          Alcotest.test_case "ugly link loses some" `Quick
            test_ugly_link_loses_some;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
          Alcotest.test_case "timer re-arm supersedes" `Quick
            test_timer_rearm_supersedes;
          Alcotest.test_case "good link delay bound" `Quick
            test_good_link_delay_bound;
          Alcotest.test_case "fifo links option" `Quick test_fifo_links;
        ] );
      ( "fifo regressions",
        [
          Alcotest.test_case "fifo holds on ugly links" `Quick
            test_fifo_ugly_link_order;
          Alcotest.test_case "fifo holds at ugly processors" `Quick
            test_fifo_ugly_proc_order;
          Alcotest.test_case "no fifo: only the delta bound" `Quick
            test_nofifo_delta_bound;
          Alcotest.test_case "statuses applied counter" `Quick
            test_statuses_applied_counted;
        ] );
      ( "fault-model regressions",
        [
          Alcotest.test_case "ugly link never beats a good link" `Quick
            test_ugly_never_beats_good;
          Alcotest.test_case "engine metrics counters" `Quick
            test_engine_metrics_counters;
        ] );
    ]
