(* Differential tests for the incremental trace checkers.

   The production checkers in Gcs_core run on persistent structures
   (Gcs_stdx.Ixq / Gcs_stdx.Fq) so each step is O(log k) instead of the
   O(k) list append/nth of the original greedy checkers. These tests pin
   the rewrite to the original semantics: a reference copy of the
   list-based checker lives here, and a guided random walk — mostly valid
   steps, with occasional corrupt ones — must be accepted or rejected
   identically by both, with the same 0-based error index and the same
   reason string. *)

open Gcs_core

(* The guided walks draw from a [Random.State] seeded per test case by
   the QCheck runner; reproducibility is owned by the harness seed, not
   by Gcs_stdx.Prng, so D2 is off for this file. *)
[@@@gcs.lint.allow "D2"]

(* ------------------------------------------------------------------ *)
(* Reference TO checker: the original list-based implementation,
   verbatim. O(k) per step — keep test traces short. *)

module Ref_to = struct
  type 'a t = {
    params : 'a To_machine.params;
    unordered : 'a list Proc.Map.t;
    queue : ('a * Proc.t) list;
    next : int Proc.Map.t;
  }

  type error = { index : int; reason : string }

  let create params =
    { params; unordered = Proc.Map.empty; queue = []; next = Proc.Map.empty }

  let unordered_of t p =
    match Proc.Map.find_opt p t.unordered with Some s -> s | None -> []

  let next_of t p =
    match Proc.Map.find_opt p t.next with Some n -> n | None -> 1

  let step t action =
    match action with
    | To_action.Bcast (p, a) ->
        Ok
          {
            t with
            unordered = Proc.Map.add p (unordered_of t p @ [ a ]) t.unordered;
          }
    | To_action.To_order _ -> Error "internal to-order event in external trace"
    | To_action.Brcv { src; dst; value } -> (
        let i = next_of t dst in
        let deliver t = Ok { t with next = Proc.Map.add dst (i + 1) t.next } in
        match Gcs_stdx.Seqx.nth1 t.queue i with
        | Some (a, p) ->
            if t.params.To_machine.equal_value a value && Proc.equal p src then
              deliver t
            else Error "brcv disagrees with the forced total order"
        | None -> (
            match unordered_of t src with
            | head :: rest when t.params.To_machine.equal_value head value ->
                deliver
                  {
                    t with
                    unordered = Proc.Map.add src rest t.unordered;
                    queue = t.queue @ [ (value, src) ];
                  }
            | head :: _ when not (t.params.To_machine.equal_value head value)
              ->
                Error "brcv out of per-sender submission order"
            | _ -> Error "brcv with no corresponding bcast"))

  let check params actions =
    let rec go t i = function
      | [] -> Ok ()
      | action :: rest -> (
          match step t action with
          | Ok t' -> go t' (i + 1) rest
          | Error reason -> Error { index = i; reason })
    in
    go (create params) 0 actions
end

(* ------------------------------------------------------------------ *)
(* Reference VS checker: the original list-based implementation,
   verbatim modulo the cause tracking (not compared here). *)

module Ref_vs = struct
  module Pg_map = Vs_machine.Pg_map

  type 'm t = {
    params : 'm Vs_machine.params;
    current : View_id.t option Proc.Map.t;
    view_sets : Proc.Set.t View_id.Map.t;
    unordered : ('m * int) list Pg_map.t;
    queue : ('m * Proc.t * int) list View_id.Map.t;
    next : int Pg_map.t;
    next_safe : int Pg_map.t;
    events_seen : int;
  }

  type error = { index : int; reason : string }

  let create params =
    let p0 = Proc.set_of_list params.Vs_machine.p0 in
    {
      params;
      current =
        List.fold_left
          (fun acc p ->
            Proc.Map.add p
              (if Proc.Set.mem p p0 then Some View_id.g0 else None)
              acc)
          Proc.Map.empty params.Vs_machine.procs;
      view_sets = View_id.Map.singleton View_id.g0 p0;
      unordered = Pg_map.empty;
      queue = View_id.Map.empty;
      next = Pg_map.empty;
      next_safe = Pg_map.empty;
      events_seen = 0;
    }

  let current_view t p =
    match Proc.Map.find_opt p t.current with Some g -> g | None -> None

  let view_members t g = View_id.Map.find_opt g t.view_sets

  let unordered_of t p g =
    match Pg_map.find_opt (p, g) t.unordered with Some s -> s | None -> []

  let raw_queue_of t g =
    match View_id.Map.find_opt g t.queue with Some s -> s | None -> []

  let next_of t p g =
    match Pg_map.find_opt (p, g) t.next with Some n -> n | None -> 1

  let next_safe_of t p g =
    match Pg_map.find_opt (p, g) t.next_safe with Some n -> n | None -> 1

  let equal_msg t = t.params.Vs_machine.equal_msg

  let force_queue_entry t g i ~src ~msg =
    let q = raw_queue_of t g in
    match Gcs_stdx.Seqx.nth1 q i with
    | Some (m, p, gpsnd_idx) ->
        if equal_msg t m msg && Proc.equal p src then Ok (t, gpsnd_idx)
        else Error "delivery disagrees with the forced per-view order"
    | None -> (
        if i <> List.length q + 1 then
          Error "delivery index beyond the forced per-view order"
        else
          match unordered_of t src g with
          | (m, gpsnd_idx) :: rest when equal_msg t m msg ->
              let t =
                {
                  t with
                  unordered = Pg_map.add (src, g) rest t.unordered;
                  queue =
                    View_id.Map.add g (q @ [ (msg, src, gpsnd_idx) ]) t.queue;
                }
              in
              Ok (t, gpsnd_idx)
          | (_, _) :: _ -> Error "delivery out of per-sender send order"
          | [] -> Error "delivery with no corresponding gpsnd in this view")

  let step t action =
    let idx = t.events_seen in
    let bump t = { t with events_seen = idx + 1 } in
    match action with
    | Vs_action.Createview _ | Vs_action.Vs_order _ ->
        Error "internal event in external trace"
    | Vs_action.Gpsnd { sender = p; msg = m } -> (
        match current_view t p with
        | None -> Ok (bump t)
        | Some g ->
            Ok
              (bump
                 {
                   t with
                   unordered =
                     Pg_map.add (p, g)
                       (unordered_of t p g @ [ (m, idx) ])
                       t.unordered;
                 }))
    | Vs_action.Newview { proc = p; view = v } -> (
        if not (View.mem p v) then Error "newview at a non-member"
        else if not (View_id.lt_opt (current_view t p) (Some v.View.id)) then
          Error "newview violates per-processor view-id monotonicity"
        else
          match view_members t v.View.id with
          | Some s when not (Proc.Set.equal s v.View.set) ->
              Error "two views with the same identifier and different sets"
          | _ ->
              Ok
                (bump
                   {
                     t with
                     current = Proc.Map.add p (Some v.View.id) t.current;
                     view_sets =
                       View_id.Map.add v.View.id v.View.set t.view_sets;
                   }))
    | Vs_action.Gprcv { src; dst; msg } -> (
        match current_view t dst with
        | None -> Error "gprcv at a processor with no view"
        | Some g -> (
            let i = next_of t dst g in
            match force_queue_entry t g i ~src ~msg with
            | Error e -> Error e
            | Ok (t, _) ->
                Ok (bump { t with next = Pg_map.add (dst, g) (i + 1) t.next })))
    | Vs_action.Safe { src; dst; msg } -> (
        match current_view t dst with
        | None -> Error "safe at a processor with no view"
        | Some g -> (
            match view_members t g with
            | None -> Error "safe in an unknown view"
            | Some members -> (
                let j = next_safe_of t dst g in
                match Gcs_stdx.Seqx.nth1 (raw_queue_of t g) j with
                | None -> Error "safe for a message not yet ordered"
                | Some (m, p, _) ->
                    if not (equal_msg t m msg && Proc.equal p src) then
                      Error "safe disagrees with the forced per-view order"
                    else if
                      not
                        (Proc.Set.for_all (fun r -> next_of t r g > j) members)
                    then Error "safe before delivery at every member of the view"
                    else
                      Ok
                        (bump
                           {
                             t with
                             next_safe =
                               Pg_map.add (dst, g) (j + 1) t.next_safe;
                           }))))

  let check params actions =
    let rec go t i = function
      | [] -> Ok ()
      | action :: rest -> (
          match step t action with
          | Ok t' -> go t' (i + 1) rest
          | Error reason -> Error { index = i; reason })
    in
    go (create params) 0 actions
end

(* ------------------------------------------------------------------ *)
(* Guided-walk generators: from the reference checker's state, propose a
   mostly-valid next action (so walks reach deep states with long forced
   orders) and occasionally a corrupt one (so the reject paths are
   exercised at every depth). Invalid proposals leave the walking state
   unchanged — both checkers will stop at that index anyway. *)

let n = 4
let procs = Proc.all ~n
let to_params = { To_machine.procs; equal_value = String.equal }

let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let gen_to_trace st =
  let len = 20 + Random.State.int st 100 in
  let t = ref (Ref_to.create to_params) in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "v%d" !counter
  in
  let valid_action () =
    let dst = pick st procs in
    let i = Ref_to.next_of !t dst in
    match Gcs_stdx.Seqx.nth1 (!t).Ref_to.queue i with
    | Some (value, src) -> To_action.Brcv { src; dst; value }
    | None -> (
        let senders =
          List.filter (fun p -> Ref_to.unordered_of !t p <> []) procs
        in
        match senders with
        | _ :: _ when Random.State.bool st ->
            let src = pick st senders in
            let value = List.hd (Ref_to.unordered_of !t src) in
            To_action.Brcv { src; dst; value }
        | _ -> To_action.Bcast (pick st procs, fresh ()))
  in
  let corrupt_action () =
    match Random.State.int st 4 with
    | 0 -> To_action.To_order (fresh (), pick st procs)
    | 1 ->
        (* random brcv: usually wrong value or wrong forced slot *)
        To_action.Brcv
          {
            src = pick st procs;
            dst = pick st procs;
            value = Printf.sprintf "v%d" (Random.State.int st (!counter + 2));
          }
    | 2 ->
        (* second-submitted value first: out of per-sender order *)
        let src = pick st procs in
        let value =
          match Ref_to.unordered_of !t src with
          | _ :: second :: _ -> second
          | _ -> fresh ()
        in
        To_action.Brcv { src; dst = pick st procs; value }
    | _ -> To_action.Brcv { src = pick st procs; dst = pick st procs; value = "ghost" }
  in
  List.init len (fun _ ->
      let action =
        if Random.State.int st 100 < 80 then valid_action ()
        else corrupt_action ()
      in
      (match Ref_to.step !t action with Ok t' -> t := t' | Error _ -> ());
      action)

let vs_params =
  { Vs_machine.procs; p0 = procs; equal_msg = String.equal; weak = false }

let gen_vs_trace st =
  let len = 20 + Random.State.int st 100 in
  let t = ref (Ref_vs.create vs_params) in
  let msg_counter = ref 0 in
  let view_counter = ref 0 in
  let views = ref [] in
  let fresh_msg () =
    incr msg_counter;
    Printf.sprintf "m%d" !msg_counter
  in
  let fresh_view ~origin =
    incr view_counter;
    let members =
      List.filter (fun p -> Proc.equal p origin || Random.State.bool st) procs
    in
    let v = View.make (View_id.make ~num:!view_counter ~origin) members in
    views := v :: !views;
    v
  in
  let valid_action () =
    match Random.State.int st 10 with
    | 0 | 1 ->
        (* install a view at one of its members: fresh (always id-monotone
           for that proc) or a recent one when still installable *)
        let p = pick st procs in
        let candidates =
          List.filter
            (fun v ->
              View.mem p v
              && View_id.lt_opt (Ref_vs.current_view !t p) (Some v.View.id))
            !views
        in
        let v =
          match candidates with
          | _ :: _ when Random.State.bool st -> pick st candidates
          | _ -> fresh_view ~origin:p
        in
        Vs_action.Newview { proc = p; view = v }
    | 2 | 3 | 4 -> Vs_action.Gpsnd { sender = pick st procs; msg = fresh_msg () }
    | 5 | 6 | 7 -> (
        let dst = pick st procs in
        match Ref_vs.current_view !t dst with
        | None -> Vs_action.Gpsnd { sender = dst; msg = fresh_msg () }
        | Some g -> (
            let i = Ref_vs.next_of !t dst g in
            match Gcs_stdx.Seqx.nth1 (Ref_vs.raw_queue_of !t g) i with
            | Some (msg, src, _) -> Vs_action.Gprcv { src; dst; msg }
            | None -> (
                let senders =
                  List.filter
                    (fun p -> Ref_vs.unordered_of !t p g <> [])
                    procs
                in
                match senders with
                | _ :: _ ->
                    let src = pick st senders in
                    let msg, _ = List.hd (Ref_vs.unordered_of !t src g) in
                    Vs_action.Gprcv { src; dst; msg }
                | [] -> Vs_action.Gpsnd { sender = dst; msg = fresh_msg () })))
    | _ -> (
        (* safe: only valid once every member of the view delivered *)
        let dst = pick st procs in
        match Ref_vs.current_view !t dst with
        | None -> Vs_action.Gpsnd { sender = dst; msg = fresh_msg () }
        | Some g -> (
            let j = Ref_vs.next_safe_of !t dst g in
            match Gcs_stdx.Seqx.nth1 (Ref_vs.raw_queue_of !t g) j with
            | Some (msg, src, _) -> Vs_action.Safe { src; dst; msg }
            | None -> Vs_action.Gpsnd { sender = dst; msg = fresh_msg () }))
  in
  let corrupt_action () =
    match Random.State.int st 6 with
    | 0 -> Vs_action.Createview (fresh_view ~origin:(pick st procs))
    | 1 ->
        Vs_action.Vs_order
          { msg = fresh_msg (); sender = pick st procs; viewid = View_id.g0 }
    | 2 ->
        (* newview at a non-member, or non-monotone reinstall *)
        let p = pick st procs in
        let v =
          match !views with
          | _ :: _ when Random.State.bool st -> pick st !views
          | _ -> fresh_view ~origin:(pick st (List.filter (fun q -> not (Proc.equal p q)) procs))
        in
        Vs_action.Newview { proc = p; view = v }
    | 3 ->
        Vs_action.Gprcv
          {
            src = pick st procs;
            dst = pick st procs;
            msg = Printf.sprintf "m%d" (Random.State.int st (!msg_counter + 2));
          }
    | 4 ->
        Vs_action.Safe
          {
            src = pick st procs;
            dst = pick st procs;
            msg = Printf.sprintf "m%d" (Random.State.int st (!msg_counter + 2));
          }
    | _ ->
        (* duplicate view id with a different membership *)
        let p = pick st procs in
        let existing =
          match !views with v :: _ -> v.View.id | [] -> View_id.g0
        in
        Vs_action.Newview
          { proc = p; view = View.make existing [ p ] }
  in
  List.init len (fun _ ->
      let action =
        if Random.State.int st 100 < 80 then valid_action ()
        else corrupt_action ()
      in
      (match Ref_vs.step !t action with Ok t' -> t := t' | Error _ -> ());
      action)

(* ------------------------------------------------------------------ *)
(* The properties: verdicts agree exactly, including index and reason. *)

let to_verdict = function
  | Ok () -> "accept"
  | Error (e : To_trace_checker.error) ->
      Printf.sprintf "reject@%d: %s" e.To_trace_checker.index
        e.To_trace_checker.reason

let ref_to_verdict = function
  | Ok () -> "accept"
  | Error (e : Ref_to.error) ->
      Printf.sprintf "reject@%d: %s" e.Ref_to.index e.Ref_to.reason

let vs_verdict = function
  | Ok () -> "accept"
  | Error (e : Vs_trace_checker.error) ->
      Printf.sprintf "reject@%d: %s" e.Vs_trace_checker.index
        e.Vs_trace_checker.reason

let ref_vs_verdict = function
  | Ok () -> "accept"
  | Error (e : Ref_vs.error) ->
      Printf.sprintf "reject@%d: %s" e.Ref_vs.index e.Ref_vs.reason

let pp_to_action = function
  | To_action.Bcast (p, v) -> Printf.sprintf "bcast(%d,%s)" p v
  | To_action.Brcv { src; dst; value } ->
      Printf.sprintf "brcv(%d->%d,%s)" src dst value
  | To_action.To_order (v, p) -> Printf.sprintf "to-order(%s,%d)" v p

let prop_to_checkers_agree =
  QCheck.Test.make ~name:"incremental TO checker = reference on guided walks"
    ~count:500
    (QCheck.make ~print:(fun tr -> String.concat "; " (List.map pp_to_action tr))
       gen_to_trace)
    (fun trace ->
      let incr = to_verdict (To_trace_checker.check to_params trace) in
      let reference = ref_to_verdict (Ref_to.check to_params trace) in
      if incr <> reference then
        QCheck.Test.fail_reportf "incremental: %s@.reference:   %s" incr
          reference
      else true)

let prop_vs_checkers_agree =
  QCheck.Test.make ~name:"incremental VS checker = reference on guided walks"
    ~count:500
    (QCheck.make gen_vs_trace)
    (fun trace ->
      let incr = vs_verdict (Vs_trace_checker.check vs_params trace) in
      let reference = ref_vs_verdict (Ref_vs.check vs_params trace) in
      if incr <> reference then
        QCheck.Test.fail_reportf "incremental: %s@.reference:   %s" incr
          reference
      else true)

(* A deterministic smoke pair so a regression fails with a readable name
   even if the qcheck seed changes. *)

let test_to_known_traces () =
  let accept =
    [
      To_action.Bcast (0, "a");
      To_action.Bcast (1, "b");
      To_action.Brcv { src = 0; dst = 1; value = "a" };
      To_action.Brcv { src = 0; dst = 0; value = "a" };
      To_action.Brcv { src = 1; dst = 0; value = "b" };
    ]
  in
  Alcotest.(check string)
    "valid trace accepted by both" "accept"
    (to_verdict (To_trace_checker.check to_params accept));
  let reject = accept @ [ To_action.Brcv { src = 1; dst = 0; value = "b" } ] in
  Alcotest.(check string)
    "identical verdicts on the reject case"
    (ref_to_verdict (Ref_to.check to_params reject))
    (to_verdict (To_trace_checker.check to_params reject))

let () =
  Alcotest.run "checker-diff"
    [
      ( "differential",
        [
          Alcotest.test_case "known TO traces" `Quick test_to_known_traces;
          QCheck_alcotest.to_alcotest prop_to_checkers_agree;
          QCheck_alcotest.to_alcotest prop_vs_checkers_agree;
        ] );
    ]
