(* The persistent corpus: save → load → minimize must reproduce inputs
   and coverage byte-for-byte, torn entries must be skipped with a
   warning (never half-parsed), stale entries must not survive a
   smaller save, and the checked-in fixture corpus must load cleanly in
   every checkout. *)

open Gcs_core
open Gcs_impl
open Gcs_nemesis
open Gcs_fuzz

let n = 4
let procs = Proc.all ~n
let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
let config = To_service.make_config vs_config

(* Relative to the test's working directory, i.e. inside dune's build
   sandbox — never the source tree. *)
let fresh_dir =
  let k = ref 0 in
  fun () ->
    incr k;
    Printf.sprintf "corpus-under-test-%d" !k

let inputs =
  List.map Input.normalize
    [
      { Input.seed = 1; steps = []; workload = [ (5.0, 0, "a"); (6.0, 1, "b") ] };
      {
        Input.seed = 2;
        steps =
          [
            Scenario.at 20.0 (Scenario.Partition [ [ 0; 1 ]; [ 2; 3 ] ]);
            Scenario.at 50.0 Scenario.Heal;
          ];
        workload = [ (25.0, 2, "with space"); (30.0, 3, "100%x") ];
      };
      { Input.seed = 3; steps = []; workload = [ (8.0, 2, "c") ] };
    ]

let strings xs = List.map Input.to_string xs

let test_roundtrip () =
  let dir = fresh_dir () in
  Corpus.save ~dir inputs;
  let loaded, warnings = Corpus.load ~dir in
  Alcotest.(check (list string)) "no warnings" [] warnings;
  Alcotest.(check (list string)) "inputs survive" (strings inputs)
    (strings loaded);
  (* Saving the loaded corpus reproduces the files byte-for-byte. *)
  let dir2 = fresh_dir () in
  Corpus.save ~dir:dir2 loaded;
  List.iteri
    (fun i _ ->
      let file d = Filename.concat d (Corpus.entry_name i) in
      let read d =
        match Gcs_stdx.Fileio.read_file (file d) with
        | Ok s -> s
        | Error e -> Alcotest.failf "read %s: %s" (file d) e
      in
      Alcotest.(check string)
        (Printf.sprintf "entry %d byte-identical" i)
        (read dir) (read dir2))
    inputs

let test_truncated_skipped () =
  let dir = fresh_dir () in
  Corpus.save ~dir inputs;
  (* A torn entry: valid prefix, no end marker — as left by an
     interrupted copy or a partial cache restore. *)
  let oc = open_out (Filename.concat dir (Corpus.entry_name 1)) in
  output_string oc "seed 2\nload 25.000000 2 t";
  close_out oc;
  let loaded, warnings = Corpus.load ~dir in
  Alcotest.(check int) "one warning" 1 (List.length warnings);
  (match warnings with
  | [ w ] ->
      let mentions =
        let name = Corpus.entry_name 1 in
        String.length w >= String.length name
        && String.sub w 0 (String.length name) = name
      in
      if not mentions then Alcotest.failf "warning does not name entry: %s" w
  | _ -> ());
  Alcotest.(check (list string))
    "others load"
    (strings [ List.nth inputs 0; List.nth inputs 2 ])
    (strings loaded)

let test_stale_removed () =
  let dir = fresh_dir () in
  Corpus.save ~dir inputs;
  Corpus.save ~dir [ List.hd inputs ];
  let loaded, warnings = Corpus.load ~dir in
  Alcotest.(check (list string)) "no warnings" [] warnings;
  Alcotest.(check int) "stale entries removed" 1 (List.length loaded)

let test_missing_dir_empty () =
  let loaded, warnings = Corpus.load ~dir:"no-such-corpus-dir" in
  Alcotest.(check (list string)) "no warnings" [] warnings;
  Alcotest.(check int) "empty" 0 (List.length loaded)

(* save → load → minimize reproduces the survivors and the coverage map
   byte-for-byte: minimization is greedy in entry order and execution is
   deterministic, so two independent loads cannot disagree. *)
let test_minimize_deterministic () =
  let execute input = (Runner.execute ~config input).Runner.coverage in
  let dir = fresh_dir () in
  Corpus.save ~dir inputs;
  let minimize () =
    let loaded, _ = Corpus.load ~dir in
    Corpus.minimize ~execute loaded
  in
  let kept1, cov1 = minimize () in
  let kept2, cov2 = minimize () in
  Alcotest.(check (list string)) "same survivors" (strings kept1)
    (strings kept2);
  Alcotest.(check (list string))
    "same coverage bytes" (Coverage.to_list cov1) (Coverage.to_list cov2);
  (* The first entry always survives (everything is novel against an
     empty map), and survivors cover no less than their own replay. *)
  Alcotest.(check bool) "nonempty" true (List.length kept1 > 0);
  let replayed =
    List.fold_left
      (fun acc i -> Coverage.union acc (execute i))
      Coverage.empty kept1
  in
  Alcotest.(check (list string))
    "survivor coverage reproduced" (Coverage.to_list cov1)
    (Coverage.to_list replayed)

let test_fixture_corpus_loads () =
  (* dune runtest runs in the test directory, dune exec in the
     workspace root. *)
  let dir =
    if Sys.file_exists "fixtures/corpus" then "fixtures/corpus"
    else "test/fixtures/corpus"
  in
  let loaded, warnings = Corpus.load ~dir in
  Alcotest.(check (list string)) "no warnings" [] warnings;
  Alcotest.(check int) "both fixtures load" 2 (List.length loaded);
  (* Each fixture executes cleanly under the standard oracle battery —
     a fixture that trips an oracle would poison every corpus-seeded
     fuzz run. *)
  List.iter
    (fun input ->
      match (Runner.execute ~config input).Runner.verdict with
      | None -> ()
      | Some f ->
          Alcotest.failf "fixture fails %s:\n%s" f.Runner.check
            (Input.to_string input))
    loaded

let () =
  Alcotest.run "corpus"
    [
      ( "persistence",
        [
          Alcotest.test_case "save/load round-trip" `Quick test_roundtrip;
          Alcotest.test_case "truncated entry skipped" `Quick
            test_truncated_skipped;
          Alcotest.test_case "stale entries removed" `Quick test_stale_removed;
          Alcotest.test_case "missing dir is empty" `Quick
            test_missing_dir_empty;
          Alcotest.test_case "minimize deterministic" `Quick
            test_minimize_deterministic;
          Alcotest.test_case "fixture corpus loads" `Quick
            test_fixture_corpus_loads;
        ] );
    ]
