(* Wire codec round-trip tests.

   Every packet constructor of the Section 8 protocol must survive
   encode/decode byte-for-byte over arbitrary payload bytes — including
   the framing characters '|' and '%', empty strings, empty views, empty
   token maps and pathologically long values — and decoding arbitrary or
   truncated bytes must return [Error], never raise. *)

open Gcs_core
module Wire = Gcs_impl.Wire

let enc p = Wire.msg_packet_codec.Gcs_transport.Iface.enc p
let dec s = Wire.msg_packet_codec.Gcs_transport.Iface.dec s

(* ----------------------------- equality ----------------------------- *)

let equal_entry eq_msg (a : 'm Wire.token_entry) (b : 'm Wire.token_entry) =
  a.Wire.idx = b.Wire.idx && a.Wire.src = b.Wire.src && eq_msg a.Wire.msg b.Wire.msg

let equal_token eq_msg (a : 'm Wire.token) (b : 'm Wire.token) =
  View_id.equal a.Wire.viewid b.Wire.viewid
  && List.equal (equal_entry eq_msg) a.Wire.entries b.Wire.entries
  && a.Wire.next_idx = b.Wire.next_idx
  && Proc.Map.equal Int.equal a.Wire.delivered b.Wire.delivered
  && Proc.Map.equal Int.equal a.Wire.safe_acked b.Wire.safe_acked
  && Proc.Map.equal Int.equal a.Wire.appended b.Wire.appended

let equal_packet eq_msg (a : 'm Wire.packet) (b : 'm Wire.packet) =
  match (a, b) with
  | Wire.Newgroup a, Wire.Newgroup b -> View_id.equal a.viewid b.viewid
  | Wire.Accept a, Wire.Accept b -> View_id.equal a.viewid b.viewid
  | Wire.Nack a, Wire.Nack b ->
      View_id.equal a.viewid b.viewid && a.proposed_num = b.proposed_num
  | Wire.ViewMsg a, Wire.ViewMsg b -> View.equal a.view b.view
  | Wire.Token a, Wire.Token b -> equal_token eq_msg a b
  | Wire.Probe a, Wire.Probe b -> a.viewid_num = b.viewid_num
  | _ -> false

(* ---------------------------- generators ---------------------------- *)

open QCheck

let gen_proc = Gen.int_range 0 5
let gen_viewid =
  Gen.map2 (fun num origin -> View_id.make ~num ~origin) (Gen.int_range 0 999) gen_proc

let gen_label =
  Gen.map3
    (fun id seqno origin -> Label.make ~id ~seqno ~origin)
    gen_viewid (Gen.int_range 1 99) gen_proc

(* Full byte range: the framing characters must be as likely as any. *)
let gen_value = Gen.(string_size ~gen:char (int_range 0 30))

let gen_summary =
  let open Gen in
  let* bindings = list_size (int_range 0 4) (pair gen_label gen_value) in
  let* ord = list_size (int_range 0 5) gen_label in
  let* next = int_range 1 50 in
  let* high = opt gen_viewid in
  let con =
    List.fold_left (fun m (l, v) -> Label.Map.add l v m) Label.Map.empty bindings
  in
  return (Summary.make ~con ~ord ~next ~high)

let gen_msg =
  Gen.oneof
    [
      Gen.map2 (fun l v -> Msg.App (l, v)) gen_label gen_value;
      Gen.map
        (fun entries -> Msg.Batch entries)
        Gen.(list_size (int_range 0 6) (pair gen_label gen_value));
      Gen.map (fun s -> Msg.Summary s) gen_summary;
    ]

let gen_proc_counts =
  Gen.map
    (List.fold_left (fun m (p, k) -> Proc.Map.add p k m) Proc.Map.empty)
    Gen.(list_size (int_range 0 4) (pair gen_proc (int_range 0 100)))

let gen_token =
  let open Gen in
  let* viewid = gen_viewid in
  let* base = int_range 0 20 in
  let* payloads = list_size (int_range 0 5) (pair gen_proc gen_msg) in
  let* delivered = gen_proc_counts in
  let* safe_acked = gen_proc_counts in
  let* appended = gen_proc_counts in
  let entries =
    List.mapi (fun i (src, msg) -> { Wire.idx = base + i; src; msg }) payloads
  in
  return
    {
      Wire.viewid;
      entries;
      next_idx = base + List.length entries;
      delivered;
      safe_acked;
      appended;
    }

let gen_view =
  Gen.map2
    (fun id members -> View.make id (List.sort_uniq Int.compare members))
    gen_viewid
    Gen.(list_size (int_range 0 5) gen_proc)

let gen_packet =
  Gen.oneof
    [
      Gen.map (fun viewid -> Wire.Newgroup { viewid }) gen_viewid;
      Gen.map (fun viewid -> Wire.Accept { viewid }) gen_viewid;
      Gen.map2
        (fun viewid proposed_num -> Wire.Nack { viewid; proposed_num })
        gen_viewid (Gen.int_range 0 999);
      Gen.map (fun view -> Wire.ViewMsg { view }) gen_view;
      Gen.map (fun t -> Wire.Token t) gen_token;
      Gen.map (fun viewid_num -> Wire.Probe { viewid_num }) (Gen.int_range 0 999);
    ]

let arb_packet =
  make ~print:(fun p -> Format.asprintf "%a" Wire.pp_packet p) gen_packet

(* ---------------------------- properties ---------------------------- *)

let prop_roundtrip =
  Test.make ~name:"msg packet enc/dec roundtrip" ~count:1000 arb_packet (fun p ->
      match dec (enc p) with
      | Ok p' -> equal_packet Msg.equal p p'
      | Error e -> Test.fail_reportf "decode failed: %s" e)

let prop_string_roundtrip =
  let arb =
    make
      ~print:(fun v -> String.escaped v)
      Gen.(string_size ~gen:char (int_range 0 200))
  in
  Test.make ~name:"string payload roundtrip (arbitrary bytes)" ~count:500 arb
    (fun v ->
      let p = Wire.Token { (Wire.fresh_token View_id.g0) with
                           Wire.entries = [ { Wire.idx = 0; src = 1; msg = v } ];
                           next_idx = 1 } in
      let c = Wire.string_packet_codec in
      match c.Gcs_transport.Iface.dec (c.Gcs_transport.Iface.enc p) with
      | Ok p' -> equal_packet String.equal p p'
      | Error e -> Test.fail_reportf "decode failed: %s" e)

let prop_garbage_total =
  let arb = make ~print:String.escaped Gen.(string_size ~gen:char (int_range 0 60)) in
  Test.make ~name:"decode is total on arbitrary bytes" ~count:1000 arb (fun s ->
      match dec s with Ok _ | Error _ -> true)

let prop_truncation_total =
  Test.make ~name:"decode is total on truncated encodings" ~count:500
    (pair arb_packet (float_bound_inclusive 1.0)) (fun (p, frac) ->
      let s = enc p in
      let cut = int_of_float (frac *. float_of_int (String.length s)) in
      let s = String.sub s 0 (min cut (String.length s)) in
      match dec s with Ok _ | Error _ -> true)

(* ---------------------------- unit cases ---------------------------- *)

let check_roundtrip name p =
  match dec (enc p) with
  | Ok p' ->
      if not (equal_packet Msg.equal p p') then
        Alcotest.failf "%s: decoded to a different packet" name
  | Error e -> Alcotest.failf "%s: decode failed: %s" name e

let vid = View_id.make ~num:3 ~origin:1

let test_constructors () =
  check_roundtrip "newgroup" (Wire.Newgroup { viewid = vid });
  check_roundtrip "accept" (Wire.Accept { viewid = vid });
  check_roundtrip "nack" (Wire.Nack { viewid = vid; proposed_num = 7 });
  check_roundtrip "viewmsg" (Wire.ViewMsg { view = View.make vid [ 0; 1; 2 ] });
  check_roundtrip "token" (Wire.Token (Wire.fresh_token vid));
  check_roundtrip "probe" (Wire.Probe { viewid_num = 12 })

let test_empty_view () =
  check_roundtrip "empty membership" (Wire.ViewMsg { view = View.make vid [] })

let test_max_length_payload () =
  (* Every byte value, cycled, at a length no real client reaches. *)
  let big = String.init 65536 (fun i -> Char.chr (i land 0xff)) in
  let label = Label.make ~id:vid ~seqno:1 ~origin:0 in
  check_roundtrip "64 KiB payload"
    (Wire.Token
       {
         (Wire.fresh_token vid) with
         Wire.entries = [ { Wire.idx = 0; src = 0; msg = Msg.App (label, big) } ];
         next_idx = 1;
       })

let test_framing_payload () =
  let label = Label.make ~id:vid ~seqno:1 ~origin:0 in
  List.iter
    (fun v -> check_roundtrip ("framing payload " ^ String.escaped v)
        (Wire.Token
           {
             (Wire.fresh_token vid) with
             Wire.entries = [ { Wire.idx = 0; src = 0; msg = Msg.App (label, v) } ];
             next_idx = 1;
           }))
    [ ""; "|"; "%"; "%n"; "||%%||"; String.make 1000 '|'; String.make 1000 '%' ]

(* The batched frame from the throughput path: one token entry carrying a
   whole [Msg.Batch], exercised at the same extremes as single [App]s. *)
let batch_packet entries =
  Wire.Token
    {
      (Wire.fresh_token vid) with
      Wire.entries = [ { Wire.idx = 0; src = 0; msg = Msg.Batch entries } ];
      next_idx = 1;
    }

let test_batch_roundtrip () =
  let label i = Label.make ~id:vid ~seqno:i ~origin:0 in
  check_roundtrip "empty batch" (batch_packet []);
  check_roundtrip "singleton batch" (batch_packet [ (label 1, "x") ]);
  check_roundtrip "multi-entry batch"
    (batch_packet [ (label 1, "x"); (label 2, ""); (label 3, "y|z%") ]);
  let big = String.init 65536 (fun i -> Char.chr (i land 0xff)) in
  check_roundtrip "64 KiB batched payload"
    (batch_packet [ (label 1, big); (label 2, "small") ]);
  List.iter
    (fun v ->
      check_roundtrip
        ("batch framing payload " ^ String.escaped v)
        (batch_packet [ (label 1, v); (label 2, v ^ v) ]))
    [ ""; "|"; "%"; "%n"; "||%%||"; String.make 1000 '|'; String.make 1000 '%' ]

let test_batch_truncation_total () =
  let label i = Label.make ~id:vid ~seqno:i ~origin:0 in
  let s =
    enc (batch_packet [ (label 1, "abc|def%ghi"); (label 2, String.make 200 '%') ])
  in
  for cut = 0 to String.length s do
    match dec (String.sub s 0 cut) with
    | Ok _ | Error _ -> ()
  done;
  (* Whole-frame decode still succeeds after surviving every prefix. *)
  match dec s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "full batch frame failed to decode: %s" e

let test_garbage_rejected () =
  List.iter
    (fun s ->
      match dec s with
      | Error _ -> ()
      | Ok p ->
          Alcotest.failf "garbage %S decoded to %s" s
            (Format.asprintf "%a" Wire.pp_packet p))
    [ ""; "zz"; "tk"; "ng"; "ng|x"; "tk|1|0|notanint"; "vm|1|0"; "%n%n" ]

let () =
  Alcotest.run "wire codec"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "all constructors" `Quick test_constructors;
          Alcotest.test_case "empty view" `Quick test_empty_view;
          Alcotest.test_case "max-length payload" `Quick test_max_length_payload;
          Alcotest.test_case "framing characters as payload" `Quick
            test_framing_payload;
          Alcotest.test_case "batched frame" `Quick test_batch_roundtrip;
          Alcotest.test_case "batched frame truncation is total" `Quick
            test_batch_truncation_total;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_string_roundtrip;
            prop_garbage_total;
            prop_truncation_total;
          ] );
    ]
