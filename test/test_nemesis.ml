(* Tests for the nemesis fault-injection subsystem: built-in scenarios
   drive the full VStoTO-over-VS stack (and the bare token ring) through
   partitions, heals, crashes and degradations; every run must satisfy
   both trace checkers and — since every built-in ends fully healed —
   the post-stabilization delivery bound of Theorem 7.2. Random
   schedules must be reproducible from their seed alone. *)

open Gcs_core
open Gcs_impl
open Gcs_nemesis

let n = 5
let procs = Proc.all ~n
let delta = 1.0
let vs_config = { Vs_node.procs; p0 = procs; pi = 8.0; mu = 10.0; delta }
let config = To_service.make_config vs_config

let check_outcome name outcome =
  if not (Harness.passed outcome) then
    Alcotest.failf "%s (seed %d): %s" name outcome.Harness.seed
      (Harness.to_json outcome)

(* ------------------------- built-in scenarios ------------------------- *)

let test_builtin_scenarios () =
  List.iter
    (fun (name, scenario) ->
      let outcome = Harness.run ~config ~seed:1 scenario in
      check_outcome name outcome;
      Alcotest.(check bool)
        (Printf.sprintf "%s: bound check applies" name)
        true
        (Option.is_some outcome.Harness.bound);
      Alcotest.(check bool)
        (Printf.sprintf "%s: deliveries happened" name)
        true
        (outcome.Harness.deliveries > 0))
    (Scenario.builtins ~procs)

let test_crash_primary_recovers () =
  (* The crash-recover of a primary-view member: the leader (processor 0)
     of the initial primary view goes down and comes back; afterwards
     every submitted value reaches every processor. *)
  let scenario = Option.get (Scenario.find_builtin ~procs "crash-primary") in
  let workload = Harness.default_workload ~procs ~count:6 () in
  let outcome = Harness.run ~config ~workload ~seed:3 scenario in
  check_outcome "crash-primary" outcome;
  Alcotest.(check int) "full delivery after recovery" (6 * n * n)
    outcome.Harness.deliveries

let test_minority_isolation_blocks_then_merges () =
  let scenario =
    Option.get (Scenario.find_builtin ~procs "minority-isolation")
  in
  let outcome = Harness.run ~config ~seed:5 scenario in
  check_outcome "minority-isolation" outcome

let test_quorum_flap () =
  List.iter
    (fun seed ->
      let scenario = Option.get (Scenario.find_builtin ~procs "quorum-flap") in
      check_outcome "quorum-flap" (Harness.run ~config ~seed scenario))
    [ 1; 2; 3 ]

(* ---------------------- impl-layer token ring ------------------------- *)

let test_vs_ring_under_nemesis () =
  List.iter
    (fun name ->
      let scenario = Option.get (Scenario.find_builtin ~procs name) in
      let outcome = Harness.run_vs_ring ~config:vs_config ~seed:2 scenario in
      (match outcome.Harness.vs_ring_conformance with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: VS ring trace rejected: %s" name e);
      Alcotest.(check bool)
        (Printf.sprintf "%s: ring views installed" name)
        true
        (outcome.Harness.views_installed > 0))
    [ "split-heal"; "crash-primary"; "churn" ]

(* ------------------------- scenario compiler -------------------------- *)

let test_compile_world_semantics () =
  let scenario =
    Scenario.v "w"
      [
        Scenario.at 10.0 (Scenario.Partition [ [ 0; 1 ]; [ 2; 3; 4 ] ]);
        Scenario.at 20.0 (Scenario.Crash 2);
        Scenario.at 30.0 (Scenario.Degrade (0, 1, Fstatus.Ugly));
        Scenario.at 40.0 Scenario.Heal;
        Scenario.at 50.0 (Scenario.Recover 2);
      ]
  in
  let world = Scenario.final_world ~procs scenario in
  Alcotest.(check bool) "ends all good" true (Scenario.all_good ~procs world);
  (* Replay the compiled schedule through a tracker and probe statuses at
     interesting times. *)
  let tracker_at t =
    List.fold_left
      (fun tracker (time, e) ->
        if time <= t then Fstatus.apply tracker e else tracker)
      Fstatus.initial
      (Scenario.compile ~procs scenario)
  in
  let t25 = tracker_at 25.0 in
  Alcotest.(check bool) "crashed proc bad" true
    (Fstatus.equal (Fstatus.proc_status t25 2) Fstatus.Bad);
  Alcotest.(check bool) "crashed proc links bad" true
    (Fstatus.equal (Fstatus.link_status t25 3 2) Fstatus.Bad);
  Alcotest.(check bool) "cross-part link bad" true
    (Fstatus.equal (Fstatus.link_status t25 0 3) Fstatus.Bad);
  Alcotest.(check bool) "same-part link good" true
    (Fstatus.equal (Fstatus.link_status t25 0 1) Fstatus.Good);
  let t35 = tracker_at 35.0 in
  Alcotest.(check bool) "degraded link ugly" true
    (Fstatus.equal (Fstatus.link_status t35 0 1) Fstatus.Ugly);
  Alcotest.(check bool) "reverse direction unaffected" true
    (Fstatus.equal (Fstatus.link_status t35 1 0) Fstatus.Good);
  let t45 = tracker_at 45.0 in
  Alcotest.(check bool) "heal clears degradation" true
    (Fstatus.equal (Fstatus.link_status t45 0 1) Fstatus.Good);
  Alcotest.(check bool) "heal does not resurrect crashed proc" true
    (Fstatus.equal (Fstatus.proc_status t45 2) Fstatus.Bad);
  let t55 = tracker_at 55.0 in
  Alcotest.(check bool) "recover restores proc" true
    (Fstatus.equal (Fstatus.proc_status t55 2) Fstatus.Good);
  Alcotest.(check bool) "recover restores links" true
    (Fstatus.equal (Fstatus.link_status t55 3 2) Fstatus.Good)

let test_partition_validation () =
  Alcotest.check_raises "overlapping parts rejected"
    (Invalid_argument "nemesis: overlapping partition parts") (fun () ->
      ignore
        (Scenario.apply_op ~procs
           (Scenario.initial_world ~procs)
           (Scenario.Partition [ [ 0; 1 ]; [ 1; 2 ] ])));
  Alcotest.check_raises "unknown processor rejected"
    (Invalid_argument "nemesis: unknown processor 9") (fun () ->
      ignore
        (Scenario.apply_op ~procs
           (Scenario.initial_world ~procs)
           (Scenario.Crash 9)));
  (* Unmentioned processors become singleton parts. *)
  let world =
    Scenario.apply_op ~procs
      (Scenario.initial_world ~procs)
      (Scenario.Partition [ [ 0; 1; 2 ] ])
  in
  Alcotest.(check int) "singletons added" 3 (List.length world.Scenario.parts)

(* ----------------------- seeded random nemesis ------------------------ *)

let test_random_reproducible () =
  List.iter
    (fun seed ->
      let s1 = Gen.scenario ~procs ~seed () in
      let s2 = Gen.scenario ~procs ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: identical schedules" seed)
        true
        (Scenario.compile ~procs s1 = Scenario.compile ~procs s2);
      let o1 = Harness.run ~config ~seed s1 in
      let o2 = Harness.run ~config ~seed s2 in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: identical outcomes" seed)
        (Harness.to_json o1) (Harness.to_json o2))
    [ 7; 42 ]

let test_random_seeds_pass () =
  List.iter
    (fun seed ->
      let scenario = Gen.scenario ~procs ~seed () in
      let outcome = Harness.run ~config ~seed scenario in
      check_outcome scenario.Scenario.name outcome)
    [ 1; 2; 3; 4 ]

let test_random_ends_good () =
  List.iter
    (fun seed ->
      let scenario = Gen.scenario ~procs ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d ends fully good" seed)
        true
        (Scenario.all_good ~procs (Scenario.final_world ~procs scenario)))
    (List.init 20 (fun i -> i * 13))

(* ------------------------------ output -------------------------------- *)

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

(* Round-trip the emitted JSON through the real parser (Gcs_stdx.Jsonx):
   scenario names containing every escape class the emitter handles —
   quotes, backslashes, tabs, CR, LF, other controls — must come back
   byte-identical, and the numeric fields must parse. *)
let nasty_names =
  [
    "tab\there";
    "cr\rreturn";
    "quote\"and\\backslash";
    "newline\nsplit";
    "bell\x07control";
  ]

let run_named name =
  let scenario =
    Scenario.v name
      [
        Scenario.at 20.0 (Scenario.Partition [ [ 0; 1; 2 ]; [ 3; 4 ] ]);
        Scenario.at 60.0 Scenario.Heal;
      ]
  in
  Harness.run ~config ~seed:2 scenario

let test_json_roundtrip () =
  List.iter
    (fun name ->
      let outcome = run_named name in
      List.iter
        (fun json ->
          match Gcs_stdx.Jsonx.of_string json with
          | Error e -> Alcotest.failf "emitted JSON does not parse: %s\n%s" e json
          | Ok parsed ->
              let str key =
                Option.bind (Gcs_stdx.Jsonx.member key parsed)
                  Gcs_stdx.Jsonx.to_string
              in
              let num key =
                Option.bind (Gcs_stdx.Jsonx.member key parsed)
                  Gcs_stdx.Jsonx.to_float
              in
              Alcotest.(check (option string))
                "scenario name round-trips byte-identically" (Some name)
                (str "scenario");
              Alcotest.(check (option (float 0.0001)))
                "seed parses" (Some 2.0) (num "seed");
              Alcotest.(check (option (float 0.0001)))
                "stabilization parses" (Some 60.0) (num "stabilization"))
        [ Harness.to_json outcome; Harness.to_json_with_metrics outcome ])
    nasty_names

let test_json_with_metrics_shape () =
  let outcome = run_named "metrics-shape" in
  match Gcs_stdx.Jsonx.of_string (Harness.to_json_with_metrics outcome) with
  | Error e -> Alcotest.failf "unparseable: %s" e
  | Ok parsed -> (
      match Gcs_stdx.Jsonx.member "metrics" parsed with
      | None -> Alcotest.fail "no metrics member"
      | Some metrics ->
          let counter name =
            match
              Option.bind (Gcs_stdx.Jsonx.member name metrics)
                Gcs_stdx.Jsonx.to_float
            with
            | Some f -> int_of_float f
            | None -> 0
          in
          (* The pre/post-stabilization splits partition the totals. *)
          Alcotest.(check int) "bcast phases sum" outcome.Harness.bcasts
            (counter "harness.bcasts.pre_stabilization"
            + counter "harness.bcasts.post_stabilization");
          Alcotest.(check int) "delivery phases sum" outcome.Harness.deliveries
            (counter "harness.deliveries.pre_stabilization"
            + counter "harness.deliveries.post_stabilization");
          Alcotest.(check int) "engine totals mirrored"
            outcome.Harness.events_processed
            (counter "engine.events_processed");
          Alcotest.(check bool) "vs layer counted" true
            (counter "vs.views_installed" > 0))

(* ------------------- run_vs_ring honors workloads --------------------- *)

let test_vs_ring_workload_honored () =
  let scenario = Option.get (Scenario.find_builtin ~procs "split-heal") in
  (* An empty workload must yield zero deliveries — the regression was a
     hardcoded default workload that ignored the caller's. *)
  let silent =
    Harness.run_vs_ring ~workload:[] ~config:vs_config ~seed:2 scenario
  in
  Alcotest.(check int) "empty workload delivers nothing" 0
    silent.Harness.ring_deliveries;
  (match silent.Harness.vs_ring_conformance with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty-workload ring trace rejected: %s" e);
  (* A single message from processor 0 reaches all five ring members. *)
  let one =
    Harness.run_vs_ring
      ~workload:[ (30.0, 0, "only") ]
      ~config:vs_config ~seed:2 scenario
  in
  Alcotest.(check int) "single message delivered to every member" n
    one.Harness.ring_deliveries;
  (* The default workload still applies when none is given. *)
  let default = Harness.run_vs_ring ~config:vs_config ~seed:2 scenario in
  Alcotest.(check bool) "default workload still used" true
    (default.Harness.ring_deliveries > n)

let test_json_shape () =
  let scenario = Option.get (Scenario.find_builtin ~procs "split-heal") in
  let json = Harness.to_json (Harness.run ~config ~seed:1 scenario) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true (contains json needle))
    [
      {|"scenario":"split-heal"|};
      {|"seed":1|};
      {|"to_conformance":"ok"|};
      {|"vs_conformance":"ok"|};
      {|"holds":true|};
      {|"passed":true|};
    ]

let () =
  Alcotest.run "nemesis"
    [
      ( "scenarios",
        [
          Alcotest.test_case "all built-ins pass checkers and bound" `Slow
            test_builtin_scenarios;
          Alcotest.test_case "crash-primary fully recovers" `Quick
            test_crash_primary_recovers;
          Alcotest.test_case "minority isolation" `Quick
            test_minority_isolation_blocks_then_merges;
          Alcotest.test_case "quorum flapping" `Slow test_quorum_flap;
          Alcotest.test_case "impl token ring under nemesis" `Quick
            test_vs_ring_under_nemesis;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "world semantics" `Quick
            test_compile_world_semantics;
          Alcotest.test_case "partition validation" `Quick
            test_partition_validation;
        ] );
      ( "random",
        [
          Alcotest.test_case "reproducible from seed" `Quick
            test_random_reproducible;
          Alcotest.test_case "random seeds pass" `Slow test_random_seeds_pass;
          Alcotest.test_case "random schedules end fully good" `Quick
            test_random_ends_good;
        ] );
      ( "output",
        [
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "json round-trips through Jsonx" `Quick
            test_json_roundtrip;
          Alcotest.test_case "metrics member shape" `Quick
            test_json_with_metrics_shape;
          Alcotest.test_case "run_vs_ring honors caller workloads" `Quick
            test_vs_ring_workload_honored;
        ] );
    ]
