(* Mutation tests for the trace checkers: record a known-good run, then
   deliberately corrupt its traces and assert that the checkers REJECT
   each corruption. This guards against vacuously-passing checkers — a
   checker that accepts everything would silently defang every other
   suite in the repository. *)

open Gcs_core
open Gcs_impl

let n = 5
let procs = Proc.all ~n
let delta = 1.0
let vs_config = { Vs_node.procs; p0 = procs; pi = 8.0; mu = 10.0; delta }
let config = To_service.make_config vs_config

let to_params = { To_machine.procs; equal_value = Value.equal }

let vs_params =
  { Vs_machine.procs; p0 = procs; equal_msg = Msg.equal; weak = false }

(* A run with a partition and a heal, so the VS trace contains several
   view changes and the TO trace contains reconciliation deliveries. *)
let run =
  let workload =
    List.concat_map
      (fun p ->
        List.init 5 (fun k ->
            ( 20.0 +. (float_of_int k *. 15.0) +. (0.3 *. float_of_int p),
              p,
              Printf.sprintf "m%d.%d" p k )))
      procs
  in
  let failures =
    List.map
      (fun e -> (60.0, e))
      (Fstatus.partition_events ~parts:[ [ 0; 1; 2 ]; [ 3; 4 ] ])
    @ List.map (fun e -> (200.0, e)) (Fstatus.heal_events ~procs)
  in
  To_service.run config ~workload ~failures ~until:500.0 ~seed:11

let to_actions = List.map snd (Timed.actions (To_service.client_trace run))
let vs_actions = List.map snd (Timed.actions (To_service.vs_trace run))

(* ------------------------- list surgery -------------------------- *)

let swap i j l =
  let arr = Array.of_list l in
  let tmp = arr.(i) in
  arr.(i) <- arr.(j);
  arr.(j) <- tmp;
  Array.to_list arr

let drop_nth i l = List.filteri (fun k _ -> k <> i) l

let dup_nth i l =
  List.concat (List.mapi (fun k a -> if k = i then [ a; a ] else [ a ]) l)

let find_pair p l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  let rec outer i =
    if i >= len then None
    else
      let rec inner j =
        if j >= len then outer (i + 1)
        else if p arr i j then Some (i, j)
        else inner (j + 1)
      in
      inner (i + 1)
  in
  outer 0

(* ------------------------- TO mutations -------------------------- *)

let check_to actions = To_trace_checker.check to_params actions

let assert_to_rejects name actions =
  match check_to actions with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "TO checker accepted the %s corruption" name

let test_to_pristine () =
  match check_to to_actions with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "pristine TO trace rejected: %s"
        (Format.asprintf "%a" To_trace_checker.pp_error e)

(* Two deliveries at the same destination from the same origin: their
   order is forced by the origin's send order, so swapping them must be
   rejected. *)
let brcv_pair =
  let arr = Array.of_list to_actions in
  find_pair
    (fun a i j ->
      ignore a;
      match (arr.(i), arr.(j)) with
      | ( To_action.Brcv { src = s1; dst = d1; value = v1 },
          To_action.Brcv { src = s2; dst = d2; value = v2 } ) ->
          Proc.equal d1 d2 && Proc.equal s1 s2 && not (Value.equal v1 v2)
      | _ -> false)
    to_actions

let test_to_reorder () =
  match brcv_pair with
  | None -> Alcotest.fail "trace has no reorderable delivery pair"
  | Some (i, j) -> assert_to_rejects "reordered deliveries" (swap i j to_actions)

let test_to_drop () =
  match brcv_pair with
  | None -> Alcotest.fail "trace has no droppable delivery"
  | Some (i, _) ->
      (* Dropping the earlier of the pair leaves a later delivery from the
         same origin that now skips a value — a prefix/FIFO violation. *)
      assert_to_rejects "dropped delivery" (drop_nth i to_actions)

let test_to_duplicate () =
  let idx =
    List.find_index
      (function To_action.Brcv _ -> true | _ -> false)
      to_actions
  in
  match idx with
  | None -> Alcotest.fail "trace has no delivery"
  | Some i -> assert_to_rejects "duplicated delivery" (dup_nth i to_actions)

(* ------------------------- VS mutations -------------------------- *)

let check_vs actions = Vs_trace_checker.check vs_params actions

let assert_vs_rejects name actions =
  match check_vs actions with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "VS checker accepted the %s corruption" name

let test_vs_pristine () =
  match check_vs vs_actions with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "pristine VS trace rejected: %s"
        (Format.asprintf "%a" Vs_trace_checker.pp_error e)

(* Two receptions at the same destination from the same source with no
   intervening view change at the destination: per-sender FIFO within the
   view forces their order. *)
let gprcv_pair =
  let arr = Array.of_list vs_actions in
  let no_view_change dst i j =
    let rec go k =
      k >= j
      ||
      match arr.(k) with
      | Vs_action.Newview { proc; _ } when Proc.equal proc dst -> false
      | _ -> go (k + 1)
    in
    go (i + 1)
  in
  find_pair
    (fun a i j ->
      ignore a;
      match (arr.(i), arr.(j)) with
      | ( Vs_action.Gprcv { src = s1; dst = d1; msg = m1 },
          Vs_action.Gprcv { src = s2; dst = d2; msg = m2 } ) ->
          Proc.equal d1 d2 && Proc.equal s1 s2
          && (not (Msg.equal m1 m2))
          && no_view_change d1 i j
      | _ -> false)
    vs_actions

let test_vs_reorder () =
  match gprcv_pair with
  | None -> Alcotest.fail "VS trace has no reorderable reception pair"
  | Some (i, j) ->
      assert_vs_rejects "reordered receptions" (swap i j vs_actions)

let test_vs_duplicate () =
  let idx =
    List.find_index
      (function Vs_action.Gprcv _ -> true | _ -> false)
      vs_actions
  in
  match idx with
  | None -> Alcotest.fail "VS trace has no reception"
  | Some i -> assert_vs_rejects "duplicated reception" (dup_nth i vs_actions)

(* Drop a view event: a processor that keeps sending and being heard
   after the dropped [newview] attributes its messages to the wrong view,
   which the per-view queues cannot absorb. *)
let test_vs_drop_view () =
  let arr = Array.of_list vs_actions in
  let len = Array.length arr in
  let candidate i =
    match arr.(i) with
    | Vs_action.Newview { proc = p; _ } ->
        let rec sends_then_heard j saw_send =
          if j >= len then false
          else
            match arr.(j) with
            | Vs_action.Gpsnd { sender; _ } when Proc.equal sender p ->
                sends_then_heard (j + 1) true
            | Vs_action.Gprcv { src; _ } when saw_send && Proc.equal src p ->
                true
            | _ -> sends_then_heard (j + 1) saw_send
        in
        sends_then_heard (i + 1) false
    | _ -> false
  in
  let rec first_candidate i =
    if i >= len then None else if candidate i then Some i else first_candidate (i + 1)
  in
  match first_candidate 0 with
  | None -> Alcotest.fail "VS trace has no droppable view event"
  | Some i -> assert_vs_rejects "dropped view event" (drop_nth i vs_actions)

(* Rewrite a reception's source to another member: the message was sent
   by [src], so crediting it to a different sender breaks that sender's
   per-view FIFO queue. *)
let test_vs_misattribute () =
  let idx =
    List.find_index
      (function Vs_action.Gprcv _ -> true | _ -> false)
      vs_actions
  in
  match idx with
  | None -> Alcotest.fail "VS trace has no reception"
  | Some i ->
      let corrupted =
        List.mapi
          (fun k a ->
            match a with
            | Vs_action.Gprcv { src; dst; msg } when k = i ->
                Vs_action.Gprcv { src = (src + 1) mod n; dst; msg }
            | a -> a)
          vs_actions
      in
      assert_vs_rejects "misattributed reception" corrupted

(* Replace a reception's payload with a message nobody ever [gpsnd]'d: no
   sender queue can supply it. *)
let test_vs_forge () =
  let forged =
    Msg.App
      (Label.make
         ~id:(View_id.make ~num:999 ~origin:0)
         ~seqno:999 ~origin:0,
       "forged")
  in
  let idx =
    List.find_index
      (function Vs_action.Gprcv _ -> true | _ -> false)
      vs_actions
  in
  match idx with
  | None -> Alcotest.fail "VS trace has no reception"
  | Some i ->
      let corrupted =
        List.mapi
          (fun k a ->
            match a with
            | Vs_action.Gprcv { src; dst; _ } when k = i ->
                Vs_action.Gprcv { src; dst; msg = forged }
            | a -> a)
          vs_actions
      in
      assert_vs_rejects "forged reception" corrupted

(* Hoist a [safe] indication before the matching [gprcv] at the same
   destination: safety may only be reported after delivery everywhere,
   including locally. *)
let test_vs_safe_before_rcv () =
  let arr = Array.of_list vs_actions in
  let pair =
    find_pair
      (fun a i j ->
        ignore a;
        match (arr.(i), arr.(j)) with
        | ( Vs_action.Gprcv { src = s1; dst = d1; msg = m1 },
            Vs_action.Safe { src = s2; dst = d2; msg = m2 } ) ->
            Proc.equal s1 s2 && Proc.equal d1 d2 && Msg.equal m1 m2
        | _ -> false)
      vs_actions
  in
  match pair with
  | None -> Alcotest.fail "VS trace has no reception/safe pair"
  | Some (i, j) ->
      assert_vs_rejects "safe before delivery" (swap i j vs_actions)

let () =
  Alcotest.run "checker_mutations"
    [
      ( "to",
        [
          Alcotest.test_case "pristine trace accepted" `Quick test_to_pristine;
          Alcotest.test_case "reordered deliveries rejected" `Quick
            test_to_reorder;
          Alcotest.test_case "dropped delivery rejected" `Quick test_to_drop;
          Alcotest.test_case "duplicated delivery rejected" `Quick
            test_to_duplicate;
        ] );
      ( "vs",
        [
          Alcotest.test_case "pristine trace accepted" `Quick test_vs_pristine;
          Alcotest.test_case "reordered receptions rejected" `Quick
            test_vs_reorder;
          Alcotest.test_case "duplicated reception rejected" `Quick
            test_vs_duplicate;
          Alcotest.test_case "dropped view event rejected" `Quick
            test_vs_drop_view;
          Alcotest.test_case "misattributed reception rejected" `Quick
            test_vs_misattribute;
          Alcotest.test_case "forged reception rejected" `Quick test_vs_forge;
          Alcotest.test_case "safe before delivery rejected" `Quick
            test_vs_safe_before_rcv;
        ] );
    ]
