(* Differential transport testing: the same seeded workload through the
   simulator and the bus must yield identical per-node delivered orders
   (the workload is anchored so the order is transport-independent — see
   Gcs_conformance.Differential). Any divergence fails with the seed and
   a JSON dump of both orders.

   The default run is CI-sized; set GCS_SOAK_ITERS to scale the seed
   sweep up (the acceptance sweep is GCS_SOAK_ITERS=13 ≈ 104 pairs). *)

open Gcs_conformance

let soak_iters =
  match Sys.getenv_opt "GCS_SOAK_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some k when k > 0 -> k | _ -> 1)
  | None -> 1

let run_pairs ?batch_window () =
  let pairs = 8 * soak_iters in
  for i = 0 to pairs - 1 do
    let seed = 1000 + (i * 131) in
    let r = Differential.run_pair ?batch_window ~seed () in
    if not (Differential.passed r) then
      Alcotest.failf "differential FAILING SEED %d: %s\n%s" seed
        (Format.asprintf "%a" Differential.pp_report r)
        (Differential.dump r);
    (* 3 nodes × 12 messages: completeness is part of the check, so a
       pass can't come from two equally empty runs. *)
    Alcotest.(check int)
      (Printf.sprintf "seed %d: sim delivered everything" seed)
      36 r.Differential.sim_deliveries;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: bus delivered everything" seed)
      36 r.Differential.bus_deliveries
  done

let test_pairs () = run_pairs ()

(* The same sweep with submission batching on: each origin's workload —
   the leader's included — leaves as one Msg.Batch, and sim and bus must
   still agree on every per-node delivered order. The TO service defers
   the leader's first token launch to 3×window, so every node's initial
   flush (at ~window) lands before the token starts collecting on either
   clock; the old leader-as-origin race is gone and no origin exclusion
   applies (see Differential's anchoring note). *)
let test_pairs_batched () = run_pairs ~batch_window:0.05 ()

let () =
  Alcotest.run "differential sim vs bus"
    [
      ( "no-fault workloads",
        [
          Alcotest.test_case
            (Printf.sprintf "%d seeded pairs" (8 * soak_iters))
            `Slow test_pairs;
          Alcotest.test_case
            (Printf.sprintf "%d seeded pairs (batched)" (8 * soak_iters))
            `Slow test_pairs_batched;
        ] );
    ]
