(* Unit tests of Vs_node internals that the scenario tests exercise only
   indirectly: ring topology, analytical bounds, token bookkeeping. *)

open Gcs_core
open Gcs_impl

let config =
  { Vs_node.procs = Proc.all ~n:5; p0 = Proc.all ~n:5; pi = 8.0; mu = 10.0; delta = 1.0 }

let test_bounds_formulas () =
  (* b = 9δ + max(π + (n+3)δ, μ) and d = 2π + nδ, literally. *)
  Alcotest.(check (float 0.001)) "paper b" (9.0 +. max (8.0 +. 8.0) 10.0)
    (Vs_node.paper_b config);
  Alcotest.(check (float 0.001)) "paper d" ((2.0 *. 8.0) +. 5.0)
    (Vs_node.paper_d config);
  (* μ-dominated regime. *)
  let slow_probe = { config with Vs_node.mu = 40.0 } in
  Alcotest.(check (float 0.001)) "paper b with large mu" (9.0 +. 40.0)
    (Vs_node.paper_b slow_probe);
  Alcotest.(check bool) "impl bounds dominate paper bounds" true
    (Vs_node.impl_b config >= Vs_node.paper_b config
    && Vs_node.impl_d config >= Vs_node.paper_d config)

let test_bounds_monotone_in_n () =
  let at n = { config with Vs_node.procs = Proc.all ~n; p0 = Proc.all ~n } in
  let values f = List.map (fun n -> f (at n)) [ 2; 3; 4; 5; 6; 7 ] in
  let monotone xs =
    let rec go = function
      | a :: (b :: _ as rest) -> a <= b && go rest
      | _ -> true
    in
    go xs
  in
  Alcotest.(check bool) "b monotone in n" true (monotone (values Vs_node.paper_b));
  Alcotest.(check bool) "d monotone in n" true (monotone (values Vs_node.paper_d));
  Alcotest.(check bool) "timeout monotone in n" true
    (monotone (values Vs_node.token_timeout))

let test_initial_states () =
  let s0 = Vs_node.initial config 0 in
  (match Vs_node.current_view s0 with
  | Some v ->
      Alcotest.(check bool) "P0 member starts in v0" true
        (View_id.equal v.View.id View_id.g0)
  | None -> Alcotest.fail "P0 member has no view");
  let outsider_config = { config with Vs_node.p0 = [ 1; 2 ] } in
  let s3 = Vs_node.initial outsider_config 3 in
  Alcotest.(check bool) "outsider starts with no view" true
    (Vs_node.current_view s3 = None);
  Alcotest.(check int) "no installs yet" 0 (Vs_node.views_installed s0);
  Alcotest.(check int) "token high-water starts at zero" 0
    (Vs_node.max_token_entries s0)

let test_fresh_token () =
  let g1 = View_id.make ~num:1 ~origin:0 in
  let tok : unit Wire.token = Wire.fresh_token g1 in
  Alcotest.(check int) "starts at index 1" 1 tok.Wire.next_idx;
  Alcotest.(check int) "no entries" 0 (List.length tok.Wire.entries);
  Alcotest.(check bool) "view id carried" true
    (View_id.equal tok.Wire.viewid g1)

(* Bounds are consistent with behaviour: in a fresh stable system the
   first client message is safe within impl_d. *)
let test_first_message_safe_within_bound () =
  let run =
    Vs_service.run config
      ~workload:[ (50.0, 2, "only") ]
      ~failures:[] ~until:200.0 ~seed:3
  in
  let safes =
    List.filter_map
      (fun (t, a) ->
        match a with Vs_action.Safe _ -> Some t | _ -> None)
      (Gcs_core.Timed.actions run.Vs_service.trace)
  in
  Alcotest.(check int) "safe at all five members" 5 (List.length safes);
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "safe by the bound (t=%.2f)" t)
        true
        (t -. 50.0 <= Vs_node.impl_d config))
    safes

(* Ring topology, including the wrap at the largest member and the
   invariant error on a corrupt (empty) view. *)
let test_ring_successor () =
  let view = View.make (View_id.make ~num:1 ~origin:0) [ 1; 3; 7 ] in
  Alcotest.(check int) "middle hops to next" 3 (Vs_node.ring_successor view 1);
  Alcotest.(check int) "gap is skipped" 7 (Vs_node.ring_successor view 3);
  Alcotest.(check int) "largest wraps to smallest" 1
    (Vs_node.ring_successor view 7);
  (* A non-member asks for its successor during membership churn: same
     rule, next-greater id, wrapping past the end. *)
  Alcotest.(check int) "non-member between members" 7
    (Vs_node.ring_successor view 4);
  Alcotest.(check int) "non-member above all members wraps" 1
    (Vs_node.ring_successor view 9);
  let empty = View.make (View_id.make ~num:2 ~origin:0) [] in
  Alcotest.check_raises "empty view is a diagnosed invariant violation"
    (Invalid_argument
       "Vs_node.ring_successor: invariant violation at proc 5: successor \
        requested in an empty view")
    (fun () -> ignore (Vs_node.ring_successor empty 5))

let () =
  Alcotest.run "vs_node_units"
    [
      ( "internals",
        [
          Alcotest.test_case "bound formulas" `Quick test_bounds_formulas;
          Alcotest.test_case "ring successor" `Quick test_ring_successor;
          Alcotest.test_case "bounds monotone in n" `Quick
            test_bounds_monotone_in_n;
          Alcotest.test_case "initial states" `Quick test_initial_states;
          Alcotest.test_case "fresh token" `Quick test_fresh_token;
          Alcotest.test_case "first message safe within bound" `Quick
            test_first_message_safe_within_bound;
        ] );
    ]
