(* Soak tests: long randomized runs at larger scale, checking safety
   everywhere. These are the repository's endurance suite; each run drives
   hundreds of simulated seconds of churn, partitions, crashes and client
   traffic through the full stack.

   The nemesis soak runs N seeded random schedules through the nemesis
   harness (trace checkers + the post-stabilization delivery bound) and
   prints the failing seed on any violation, so a failure reproduces with
   `gcs nemesis --seed N`. N defaults small; set GCS_SOAK_ITERS to scale
   it up.

   Independent seeded runs fan out over a Gcs_stdx.Pool (GCS_JOBS worker
   domains, default 1). Each run owns its PRNG, so the checked outcomes
   are identical at any job count. *)

open Gcs_core
open Gcs_impl

let n = 7
let procs = Proc.all ~n
let delta = 1.0
let vs_config = { Vs_node.procs; p0 = procs; pi = 11.0; mu = 13.0; delta }
let config = To_service.make_config vs_config

let random_failures prng ~events ~start ~spacing =
  List.concat
    (List.init events (fun i ->
         let t = start +. (float_of_int i *. spacing) in
         match Gcs_stdx.Prng.int prng 4 with
         | 0 ->
             let p = Gcs_stdx.Prng.pick_exn prng procs in
             let s =
               match Gcs_stdx.Prng.int prng 3 with
               | 0 -> Fstatus.Good
               | 1 -> Fstatus.Bad
               | _ -> Fstatus.Ugly
             in
             [ (t, Fstatus.Proc_status (p, s)) ]
         | 1 ->
             let p = Gcs_stdx.Prng.pick_exn prng procs in
             let q = Gcs_stdx.Prng.pick_exn prng procs in
             if Proc.equal p q then []
             else
               [
                 (t, Fstatus.Link_status (p, q, Fstatus.Bad));
                 (t +. (spacing /. 2.0), Fstatus.Link_status (p, q, Fstatus.Good));
               ]
         | 2 ->
             (* A clean partition into two random halves. *)
             let shuffled = Gcs_stdx.Prng.shuffle prng procs in
             let k = 1 + Gcs_stdx.Prng.int prng (n - 1) in
             let a = Gcs_stdx.Seqx.take k shuffled
             and b = Gcs_stdx.Seqx.drop k shuffled in
             List.map (fun e -> (t, e)) (Fstatus.partition_events ~parts:[ a; b ])
         | _ -> List.map (fun e -> (t, e)) (Fstatus.heal_events ~procs)))

let workload count spacing =
  List.concat_map
    (fun p ->
      List.init count (fun k ->
          ( 5.0 +. (float_of_int k *. spacing) +. (0.31 *. float_of_int p),
            p,
            Printf.sprintf "s%d.%d" p k )))
    procs

let test_soak_end_to_end () =
  Gcs_stdx.Pool.iter
    (fun seed ->
      let prng = Gcs_stdx.Prng.create (seed * 31) in
      let failures =
        random_failures prng ~events:20 ~start:40.0 ~spacing:60.0
        @ List.map (fun e -> (1400.0, e)) (Fstatus.heal_events ~procs)
      in
      let run =
        To_service.run config
          ~workload:(workload 30 45.0)
          ~failures ~until:2000.0 ~seed
      in
      (match To_service.to_conforms config run with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "seed %d TO: %s" seed
            (Format.asprintf "%a" To_trace_checker.pp_error e));
      (match To_service.vs_conforms config run with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "seed %d VS: %s" seed
            (Format.asprintf "%a" Vs_trace_checker.pp_error e));
      (* After the final heal, recovery must complete: every submitted
         value reaches every processor by the end of the run. *)
      let total_deliveries =
        List.length
          (List.filter
             (fun (_, a) -> match a with To_action.Brcv _ -> true | _ -> false)
             (Timed.actions (To_service.client_trace run)))
      in
      let expected = 30 * n * n in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: full delivery after final heal" seed)
        expected total_deliveries)
    [ 1; 2; 3; 4 ]

let test_soak_to_property_after_final_heal () =
  let prng = Gcs_stdx.Prng.create 99 in
  let failures =
    random_failures prng ~events:15 ~start:40.0 ~spacing:50.0
    @ List.map (fun e -> (1000.0, e)) (Fstatus.heal_events ~procs)
  in
  let until = 1800.0 in
  let run =
    To_service.run config ~workload:(workload 25 40.0) ~failures ~until ~seed:9
  in
  let b = Vs_node.impl_b vs_config +. Vs_node.impl_d vs_config in
  let d = Vs_node.impl_d vs_config +. (4.0 *. delta) in
  let report =
    To_property.check ~b ~d ~q:procs ~horizon:until
      (To_service.client_trace run)
  in
  if not (To_property.holds report) then
    Alcotest.failf "TO-property after soak: %s"
      (Format.asprintf "%a" To_property.pp_report report)

let test_soak_rsm_consistency () =
  (* The KV replicas stay consistent through the whole ordeal. *)
  let module Kv_rsm = Gcs_apps.Rsm.Make (Gcs_apps.Kv_store) in
  let prng = Gcs_stdx.Prng.create 123 in
  let failures = random_failures prng ~events:18 ~start:30.0 ~spacing:55.0 in
  let ops =
    List.init 60 (fun i ->
        Kv_rsm.submit (i mod n)
          (Gcs_apps.Kv_store.Put
             (Printf.sprintf "k%d" (i mod 9), string_of_int i))
          (10.0 +. (float_of_int i *. 18.0)))
  in
  let run = To_service.run config ~workload:ops ~failures ~until:1500.0 ~seed:5 in
  let actions = List.map snd (Timed.actions (To_service.client_trace run)) in
  Alcotest.(check bool) "replicas consistent" true
    (Kv_rsm.consistent procs actions)

let soak_iters =
  match Sys.getenv_opt "GCS_SOAK_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some k when k > 0 -> k | _ -> 4)
  | None -> 4

let test_soak_nemesis_schedules () =
  (* N seeded random nemesis schedules through the full harness. Any
     checker or delivery-bound violation fails with the seed printed —
     reproduce with `gcs nemesis --seed N -n 7 --pi 11 --mu 13`. *)
  Gcs_stdx.Pool.iter
    (fun i ->
      let seed = 101 + (i * 97) in
      let scenario =
        Gcs_nemesis.Gen.scenario ~procs ~events:(8 + (i mod 5)) ~seed ()
      in
      let outcome = Gcs_nemesis.Harness.run ~config ~seed scenario in
      if not (Gcs_nemesis.Harness.passed outcome) then
        (* to_json_with_metrics: the failure line carries the run's full
           metrics snapshot alongside the checker verdicts. *)
        Alcotest.failf "nemesis soak FAILING SEED %d: %s" seed
          (Gcs_nemesis.Harness.to_json_with_metrics outcome))
    (List.init soak_iters (fun i -> i))

let test_soak_nemesis_vs_ring () =
  Gcs_stdx.Pool.iter
    (fun i ->
      let seed = 211 + (i * 89) in
      let scenario = Gcs_nemesis.Gen.scenario ~procs ~events:8 ~seed () in
      let outcome =
        Gcs_nemesis.Harness.run_vs_ring ~config:vs_config ~seed scenario
      in
      match outcome.Gcs_nemesis.Harness.vs_ring_conformance with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "nemesis VS-ring soak FAILING SEED %d: %s" seed e)
    (List.init ((soak_iters + 1) / 2) (fun i -> i))

let () =
  Alcotest.run "soak"
    [
      ( "endurance",
        [
          Alcotest.test_case "end-to-end safety under churn" `Slow
            test_soak_end_to_end;
          Alcotest.test_case "TO-property after final heal" `Slow
            test_soak_to_property_after_final_heal;
          Alcotest.test_case "RSM consistency under churn" `Slow
            test_soak_rsm_consistency;
        ] );
      ( "nemesis",
        [
          Alcotest.test_case "seeded nemesis schedules" `Slow
            test_soak_nemesis_schedules;
          Alcotest.test_case "seeded nemesis on the VS ring" `Slow
            test_soak_nemesis_vs_ring;
        ] );
    ]
