(* The differential fuzzing mode end to end: clean runs on every pair
   find nothing (zero false positives), every planted divergence-only
   mutant is found and shrunk within CI budgets, and the fuzzy-hashed
   state-snapshot coverage is byte-deterministic — across job counts and
   across same-seed repeats, for both services and for the differential
   mode (a qcheck property over random master seeds). *)

open Gcs_core
open Gcs_impl
open Gcs_fuzz

let n = 4
let procs = Proc.all ~n
let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
let config = To_service.make_config vs_config

(* ------------------------- clean pair smokes ------------------------- *)

(* Budgets are per-pair: the bus-backed pairs cost real wall-clock per
   execution, the simulated cross-protocol pairs are practically free. *)
let clean_budget = function
  | Differential.Sim_bus -> 10
  | Differential.Skeen_bus -> 16
  | Differential.Vstoto_skeen | Differential.Vstoto_sequencer -> 120

let test_clean_pair pair () =
  let outcome =
    Fuzz.run ~pair ~jobs:2 ~config ~seed:3 ~execs:(clean_budget pair) ()
  in
  match outcome.Fuzz.failure with
  | None -> ()
  | Some (input, f) ->
      Alcotest.failf "clean %s run failed %s:\n%s\n%s"
        (Differential.name pair) f.Runner.check f.Runner.detail
        (Input.to_string input)

(* --------------------------- planted bugs ---------------------------- *)

let test_diff_mutant (m : Diff_mutant.t) () =
  let outcome =
    Fuzz.run ?mutant:m.Diff_mutant.vs ?skeen_mutant:m.Diff_mutant.skeen
      ?tamper:m.Diff_mutant.tamper ~pair:m.Diff_mutant.pair ~jobs:2 ~config
      ~seed:7 ~execs:200 ~shrink_budget:300 ()
  in
  match (outcome.Fuzz.failure, outcome.Fuzz.shrunk) with
  | None, _ ->
      Alcotest.failf "diff mutant %s not found within budget"
        m.Diff_mutant.name
  | Some _, None ->
      Alcotest.failf "diff mutant %s found but not shrunk" m.Diff_mutant.name
  | Some (original, f), Some s ->
      Alcotest.(check string)
        "blamed check is divergence" "divergence" f.Runner.check;
      let before = Input.events original
      and after = Input.events s.Shrink.input in
      if after > before then
        Alcotest.failf "diff mutant %s: shrink grew %d -> %d events"
          m.Diff_mutant.name before after;
      if after > 25 then
        Alcotest.failf "diff mutant %s: shrunk repro still has %d events"
          m.Diff_mutant.name after;
      Alcotest.(check string)
        "shrunk failure check" f.Runner.check s.Shrink.failure.Runner.check

(* ------------------- snapshot-hash determinism ----------------------- *)

(* The locality-sensitive state-snapshot hashes enter the coverage map
   as "sh:*" / "shx:*" features. They steer the power schedule, so any
   nondeterminism in them would silently fork fuzzing campaigns between
   machines or job counts. The property: for a random master seed, the
   snapshot-hash features of a whole fuzz run are byte-identical across
   --jobs 1 vs --jobs 4 and across same-seed repeats. *)
let snapshot_hashes outcome =
  List.filter
    (fun f ->
      (String.length f >= 3 && String.sub f 0 3 = "sh:")
      || (String.length f >= 4 && String.sub f 0 4 = "shx:"))
    (Coverage.to_list outcome.Fuzz.coverage)

let run_mode mode ~jobs ~seed =
  match mode with
  | `Vstoto -> Fuzz.run ~service:Fuzz.Vstoto_stack ~jobs ~config ~seed ~execs:40 ()
  | `Skeen -> Fuzz.run ~service:Fuzz.Skeen_backend ~jobs ~config ~seed ~execs:40 ()
  | `Diff ->
      Fuzz.run ~pair:Differential.Vstoto_skeen ~jobs ~config ~seed ~execs:40 ()

let mode_name = function
  | `Vstoto -> "vstoto"
  | `Skeen -> "skeen"
  | `Diff -> "diff:vstoto-skeen"

let prop_snapshot_hash_determinism mode =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "snapshot hashes deterministic (%s)" (mode_name mode))
    ~count:4
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let a = run_mode mode ~jobs:1 ~seed in
      let b = run_mode mode ~jobs:4 ~seed in
      let c = run_mode mode ~jobs:4 ~seed in
      let ha = snapshot_hashes a
      and hb = snapshot_hashes b
      and hc = snapshot_hashes c in
      if ha = [] then
        QCheck.Test.fail_reportf "%s: run produced no snapshot hashes"
          (mode_name mode);
      if ha <> hb then
        QCheck.Test.fail_reportf "%s seed %d: jobs 1 vs 4 hash sets differ"
          (mode_name mode) seed;
      if hb <> hc then
        QCheck.Test.fail_reportf "%s seed %d: same-seed repeats differ"
          (mode_name mode) seed;
      Fuzz.stats_to_json a = Fuzz.stats_to_json b
      && Fuzz.corpus_strings a = Fuzz.corpus_strings b)

(* --------------------------- registration ---------------------------- *)

let clean_cases =
  List.map
    (fun pair ->
      Alcotest.test_case
        (Printf.sprintf "clean %s finds nothing" (Differential.name pair))
        `Slow (test_clean_pair pair))
    Differential.all

let mutant_cases =
  List.map
    (fun m ->
      Alcotest.test_case
        (m.Diff_mutant.name ^ " found and shrunk")
        `Slow (test_diff_mutant m))
    Diff_mutant.all

let () =
  Alcotest.run "diff-fuzz"
    [
      ("clean", clean_cases);
      ("planted", mutant_cases);
      ( "state-hash determinism",
        [
          QCheck_alcotest.to_alcotest (prop_snapshot_hash_determinism `Vstoto);
          QCheck_alcotest.to_alcotest (prop_snapshot_hash_determinism `Skeen);
          QCheck_alcotest.to_alcotest (prop_snapshot_hash_determinism `Diff);
        ] );
    ]
