(* Tests for the sequence utilities and the deterministic PRNG. *)

open Gcs_stdx

let eq = Int.equal

let test_is_prefix () =
  Alcotest.(check bool) "empty prefix" true (Seqx.is_prefix ~equal:eq [] [ 1 ]);
  Alcotest.(check bool) "proper prefix" true (Seqx.is_prefix ~equal:eq [ 1; 2 ] [ 1; 2; 3 ]);
  Alcotest.(check bool) "equal" true (Seqx.is_prefix ~equal:eq [ 1; 2 ] [ 1; 2 ]);
  Alcotest.(check bool) "not prefix" false (Seqx.is_prefix ~equal:eq [ 2 ] [ 1; 2 ]);
  Alcotest.(check bool) "longer" false (Seqx.is_prefix ~equal:eq [ 1; 2; 3 ] [ 1; 2 ])

let test_consistent () =
  Alcotest.(check bool) "consistent" true (Seqx.consistent ~equal:eq [ 1 ] [ 1; 2 ]);
  Alcotest.(check bool) "inconsistent" false (Seqx.consistent ~equal:eq [ 1; 3 ] [ 1; 2 ])

let test_lub () =
  Alcotest.(check (option (list int))) "lub of consistent"
    (Some [ 1; 2; 3 ])
    (Seqx.lub ~equal:eq [ [ 1 ]; [ 1; 2; 3 ]; [ 1; 2 ] ]);
  Alcotest.(check (option (list int))) "lub of empty collection" (Some [])
    (Seqx.lub ~equal:eq []);
  Alcotest.(check (option (list int))) "lub of inconsistent" None
    (Seqx.lub ~equal:eq [ [ 1; 2 ]; [ 1; 3 ] ])

let test_nth1 () =
  Alcotest.(check (option int)) "first" (Some 10) (Seqx.nth1 [ 10; 20 ] 1);
  Alcotest.(check (option int)) "second" (Some 20) (Seqx.nth1 [ 10; 20 ] 2);
  Alcotest.(check (option int)) "past end" None (Seqx.nth1 [ 10; 20 ] 3);
  Alcotest.(check (option int)) "zero" None (Seqx.nth1 [ 10; 20 ] 0)

let test_take_drop () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Seqx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take beyond" [ 1; 2; 3 ] (Seqx.take 5 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Seqx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop all" [] (Seqx.drop 5 [ 1; 2; 3 ])

let test_applyall () =
  let f x = if x < 3 then Some (x * 10) else None in
  Alcotest.(check (option (list int))) "all in domain" (Some [ 10; 20 ])
    (Seqx.applyall f [ 1; 2 ]);
  Alcotest.(check (option (list int))) "outside domain" None
    (Seqx.applyall f [ 1; 5 ])

let test_index_of () =
  Alcotest.(check (option int)) "found" (Some 2) (Seqx.index_of ~equal:eq 5 [ 4; 5; 6 ]);
  Alcotest.(check (option int)) "missing" None (Seqx.index_of ~equal:eq 9 [ 4; 5 ])

let test_lcp () =
  Alcotest.(check (list int)) "lcp" [ 1; 2 ]
    (Seqx.longest_common_prefix ~equal:eq [ 1; 2; 3 ] [ 1; 2; 4 ])

let test_sorted_helpers () =
  Alcotest.(check bool) "strictly sorted" true
    (Seqx.is_strictly_sorted ~compare:Int.compare [ 1; 2; 5 ]);
  Alcotest.(check bool) "duplicate" false
    (Seqx.is_strictly_sorted ~compare:Int.compare [ 1; 1; 5 ]);
  Alcotest.(check (list int)) "dedup" [ 1; 2; 3 ]
    (Seqx.dedup_sorted ~compare:Int.compare [ 3; 1; 2; 1; 3 ])

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let take n t = List.init n (fun _ -> Prng.int t 1000) in
  Alcotest.(check (list int)) "same seed same stream" (take 20 a) (take 20 b);
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (take 20 (Prng.create 42) <> take 20 c)

let test_prng_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int t 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let y = Prng.int_in t 5 9 in
    Alcotest.(check bool) "int_in range" true (y >= 5 && y <= 9);
    let f = Prng.float t in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 1.0)
  done

let test_prng_pick_shuffle () =
  let t = Prng.create 11 in
  Alcotest.(check (option int)) "pick empty" None (Prng.pick t []);
  let xs = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 50 do
    match Prng.pick t xs with
    | Some x -> Alcotest.(check bool) "pick member" true (List.mem x xs)
    | None -> Alcotest.fail "pick returned None on nonempty"
  done;
  let shuffled = Prng.shuffle t xs in
  Alcotest.(check (list int)) "shuffle is a permutation" xs
    (List.sort Int.compare shuffled)

(* ---------------- Ixq: int-indexed persistent queue ---------------- *)

let test_ixq_basics () =
  let q = List.fold_left Ixq.snoc Ixq.empty [ 10; 20; 30 ] in
  Alcotest.(check int) "length" 3 (Ixq.length q);
  Alcotest.(check bool) "not empty" false (Ixq.is_empty q);
  Alcotest.(check bool) "empty is empty" true (Ixq.is_empty Ixq.empty);
  Alcotest.(check (option int)) "nth1 1" (Some 10) (Ixq.nth1 q 1);
  Alcotest.(check (option int)) "nth1 3" (Some 30) (Ixq.nth1 q 3);
  Alcotest.(check (option int)) "nth1 0" None (Ixq.nth1 q 0);
  Alcotest.(check (option int)) "nth1 past end" None (Ixq.nth1 q 4);
  Alcotest.(check (option int)) "last" (Some 30) (Ixq.last q);
  Alcotest.(check (option int)) "last of empty" None (Ixq.last Ixq.empty);
  Alcotest.(check (list int)) "to_list" [ 10; 20; 30 ] (Ixq.to_list q);
  Alcotest.(check (list int)) "prefix 2" [ 10; 20 ] (Ixq.prefix 2 q);
  Alcotest.(check (list int)) "prefix 0" [] (Ixq.prefix 0 q);
  Alcotest.(check (list int)) "prefix beyond" [ 10; 20; 30 ] (Ixq.prefix 9 q)

let test_ixq_persistence () =
  (* snoc never mutates: the original survives extension. *)
  let q2 = Ixq.snoc (Ixq.snoc Ixq.empty 1) 2 in
  let _q3 = Ixq.snoc q2 3 in
  Alcotest.(check (list int)) "old version intact" [ 1; 2 ] (Ixq.to_list q2)

let prop_ixq_models_list =
  QCheck.Test.make ~name:"Ixq.of_list round-trips and indexes like a list"
    ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let q = Ixq.of_list xs in
      Ixq.to_list q = xs
      && Ixq.length q = List.length xs
      && List.for_all
           (fun i -> Ixq.nth1 q (i + 1) = Some (List.nth xs i))
           (List.init (List.length xs) (fun i -> i))
      && Ixq.fold (fun acc x -> x :: acc) [] q = List.rev xs)

(* ---------------- Tape: persistent append-only vector ---------------- *)

let test_tape_basics () =
  let t = Tape.append (Tape.empty ()) [ 10; 20; 30 ] in
  Alcotest.(check int) "length" 3 (Tape.length t);
  Alcotest.(check bool) "not empty" false (Tape.is_empty t);
  Alcotest.(check bool) "empty is empty" true (Tape.is_empty (Tape.empty ()));
  Alcotest.(check int) "get 0" 10 (Tape.get t 0);
  Alcotest.(check int) "get 2" 30 (Tape.get t 2);
  Alcotest.(check (option int)) "nth1 1" (Some 10) (Tape.nth1 t 1);
  Alcotest.(check (option int)) "nth1 3" (Some 30) (Tape.nth1 t 3);
  Alcotest.(check (option int)) "nth1 0" None (Tape.nth1 t 0);
  Alcotest.(check (option int)) "nth1 past end" None (Tape.nth1 t 4);
  Alcotest.(check (option int)) "first" (Some 10) (Tape.first t);
  Alcotest.(check (list int)) "to_list" [ 10; 20; 30 ] (Tape.to_list t);
  Alcotest.(check (list int)) "rest" [ 20; 30 ] (Tape.to_list (Tape.rest t));
  Alcotest.(check (list int)) "drop 2" [ 30 ] (Tape.to_list (Tape.drop 2 t));
  Alcotest.(check (list int)) "drop beyond" [] (Tape.to_list (Tape.drop 9 t));
  Alcotest.(check bool) "get out of bounds raises" true
    (try
       ignore (Tape.get t 3);
       false
     with Invalid_argument _ -> true)

let test_tape_persistence () =
  (* Extending an older slice must not disturb any other slice, even
     though the newest slice extends its buffer in place. *)
  let t2 = Tape.snoc (Tape.snoc (Tape.empty ()) 1) 2 in
  let t3 = Tape.snoc t2 3 in
  let t2' = Tape.snoc t2 99 in
  Alcotest.(check (list int)) "fork a: linear extension" [ 1; 2; 3 ]
    (Tape.to_list t3);
  Alcotest.(check (list int)) "fork b: diverging extension" [ 1; 2; 99 ]
    (Tape.to_list t2');
  Alcotest.(check (list int)) "base version intact" [ 1; 2 ] (Tape.to_list t2);
  (* Dropped-prefix slices share the buffer but keep their own window. *)
  let d = Tape.drop 1 t3 in
  let d' = Tape.snoc d 4 in
  Alcotest.(check (list int)) "suffix slice" [ 2; 3 ] (Tape.to_list d);
  Alcotest.(check (list int)) "suffix extension" [ 2; 3; 4 ] (Tape.to_list d');
  Alcotest.(check (list int)) "origin of suffix intact" [ 1; 2; 3 ]
    (Tape.to_list t3)

let test_tape_equal () =
  let a = Tape.of_list [ 1; 2; 3 ] and b = Tape.append (Tape.empty ()) [ 1; 2; 3 ] in
  Alcotest.(check bool) "structural equality across buffers" true
    (Tape.equal Int.equal a b);
  Alcotest.(check bool) "length mismatch" false
    (Tape.equal Int.equal a (Tape.of_list [ 1; 2 ]));
  Alcotest.(check bool) "element mismatch" false
    (Tape.equal Int.equal a (Tape.of_list [ 1; 2; 4 ]))

let prop_tape_models_list =
  QCheck.Test.make ~name:"Tape.of_list round-trips and indexes like a list"
    ~count:300
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      let t = Tape.append (Tape.of_list xs) ys in
      let model = xs @ ys in
      Tape.to_list t = model
      && Tape.length t = List.length model
      && Tape.fold_left (fun acc x -> x :: acc) [] t = List.rev model
      && List.for_all
           (fun i -> Tape.get t i = List.nth model i)
           (List.init (List.length model) (fun i -> i)))

let prop_tape_drop_snoc =
  QCheck.Test.make ~name:"Tape drop/snoc interleaving models list ops"
    ~count:300
    QCheck.(pair small_nat (list small_int))
    (fun (n, xs) ->
      let t = Tape.of_list xs in
      let d = Tape.drop n t in
      let d' = Tape.snoc d 999 in
      Tape.to_list d = Seqx.drop n xs
      && Tape.to_list d' = Seqx.drop n xs @ [ 999 ]
      && Tape.to_list t = xs)

(* ---------------- Fq: persistent FIFO ---------------- *)

let test_fq_basics () =
  let q = List.fold_left Fq.push Fq.empty [ 1; 2; 3 ] in
  Alcotest.(check int) "length" 3 (Fq.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Fq.peek q);
  (match Fq.pop q with
  | Some (1, q') ->
      Alcotest.(check (list int)) "rest after pop" [ 2; 3 ] (Fq.to_list q');
      (* Persistence: popping q' does not disturb q. *)
      ignore (Fq.pop q');
      Alcotest.(check (list int)) "original intact" [ 1; 2; 3 ] (Fq.to_list q)
  | _ -> Alcotest.fail "pop returned wrong head");
  Alcotest.(check bool) "pop empty" true (Fq.pop Fq.empty = None);
  Alcotest.(check bool) "peek empty" true (Fq.peek Fq.empty = None)

let prop_fq_is_fifo =
  (* Interpret booleans as push(counter++) / pop and compare against a
     plain list model throughout the walk. *)
  QCheck.Test.make ~name:"Fq behaves like a list FIFO under random ops"
    ~count:300
    QCheck.(list bool)
    (fun ops ->
      let step (q, model, n, ok) push =
        if not ok then (q, model, n, false)
        else if push then (Fq.push q n, model @ [ n ], n + 1, true)
        else
          match (Fq.pop q, model) with
          | None, [] -> (q, model, n, true)
          | Some (x, q'), m :: rest -> (q', rest, n, x = m)
          | Some _, [] | None, _ :: _ -> (q, model, n, false)
      in
      let q, model, _, ok =
        List.fold_left step (Fq.empty, [], 0, true) ops
      in
      ok && Fq.to_list q = model && Fq.length q = List.length model)

let prop_lub_is_upper_bound =
  QCheck.Test.make ~name:"lub bounds all consistent prefixes" ~count:200
    QCheck.(list_of_size (Gen.int_bound 40) small_int)
    (fun base ->
      (* Build a consistent family: all prefixes of one list. The size is
         bounded because the family is quadratic in the list length. *)
      let prefixes = List.mapi (fun i _ -> Seqx.take i base) base in
      match Seqx.lub ~equal:eq prefixes with
      | None -> prefixes <> [] && false
      | Some lub -> List.for_all (fun p -> Seqx.is_prefix ~equal:eq p lub) prefixes)

let prop_take_drop_append =
  QCheck.Test.make ~name:"take n ++ drop n = id" ~count:200
    QCheck.(pair small_nat (list small_int))
    (fun (n, xs) -> Seqx.take n xs @ Seqx.drop n xs = xs)


(* ---------------- metrics ---------------- *)

let test_metrics_counters () =
  let m = Gcs_stdx.Metrics.create () in
  Alcotest.(check int) "unregistered counter reads 0" 0
    (Gcs_stdx.Metrics.counter m "a");
  Gcs_stdx.Metrics.incr m "a";
  Gcs_stdx.Metrics.incr m "a" ~by:4;
  Gcs_stdx.Metrics.incr m "b";
  Alcotest.(check int) "accumulates" 5 (Gcs_stdx.Metrics.counter m "a");
  Alcotest.(check int) "independent names" 1 (Gcs_stdx.Metrics.counter m "b")

let test_metrics_gauges () =
  let m = Gcs_stdx.Metrics.create () in
  Alcotest.(check (option (float 0.0))) "unset gauge" None
    (Gcs_stdx.Metrics.gauge m "g");
  Gcs_stdx.Metrics.set_gauge m "g" 2.5;
  Gcs_stdx.Metrics.set_gauge m "g" 1.0;
  Alcotest.(check (option (float 0.0001))) "set overwrites" (Some 1.0)
    (Gcs_stdx.Metrics.gauge m "g");
  Gcs_stdx.Metrics.max_gauge m "h" 3.0;
  Gcs_stdx.Metrics.max_gauge m "h" 2.0;
  Gcs_stdx.Metrics.max_gauge m "h" 7.0;
  Alcotest.(check (option (float 0.0001))) "max keeps high-water" (Some 7.0)
    (Gcs_stdx.Metrics.gauge m "h")

let test_metrics_histogram () =
  let m = Gcs_stdx.Metrics.create () in
  List.iter
    (Gcs_stdx.Metrics.observe ~buckets:[ 1.0; 10.0 ] m "lat")
    [ 0.5; 0.9; 5.0; 50.0 ];
  match Gcs_stdx.Metrics.histogram m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some (buckets, count, sum, max_v) ->
      Alcotest.(check int) "observations" 4 count;
      Alcotest.(check (float 0.0001)) "sum" 56.4 sum;
      Alcotest.(check (float 0.0001)) "max" 50.0 max_v;
      Alcotest.(check (list (pair (float 0.0001) int)))
        "bucket counts (cumulative le semantics per slot)"
        [ (1.0, 2); (10.0, 1); (infinity, 1) ]
        buckets

let test_metrics_kind_clash () =
  let m = Gcs_stdx.Metrics.create () in
  Gcs_stdx.Metrics.incr m "x";
  Alcotest.(check bool) "kind clash raises" true
    (try
       Gcs_stdx.Metrics.set_gauge m "x" 1.0;
       false
     with Invalid_argument _ -> true)

let test_metrics_json_deterministic () =
  let mk () =
    let m = Gcs_stdx.Metrics.create () in
    (* Register in different orders; the snapshot sorts by name. *)
    m
  in
  let m1 = mk () and m2 = mk () in
  Gcs_stdx.Metrics.incr m1 "z";
  Gcs_stdx.Metrics.incr m1 "a" ~by:2;
  Gcs_stdx.Metrics.observe m1 "lat" 3.0;
  Gcs_stdx.Metrics.observe m2 "lat" 3.0;
  Gcs_stdx.Metrics.incr m2 "a" ~by:2;
  Gcs_stdx.Metrics.incr m2 "z";
  Alcotest.(check string) "insertion order does not leak"
    (Gcs_stdx.Metrics.to_json m1) (Gcs_stdx.Metrics.to_json m2);
  (* And the emitted JSON parses with the real parser. *)
  match Gcs_stdx.Jsonx.of_string (Gcs_stdx.Metrics.to_json m1) with
  | Ok (Gcs_stdx.Jsonx.Obj fields) ->
      Alcotest.(check (list string)) "sorted keys" [ "a"; "lat"; "z" ]
        (List.map fst fields)
  | Ok _ -> Alcotest.fail "snapshot is not an object"
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e

(* ---------------- jsonx ---------------- *)

let jx = Alcotest.testable (fun ppf _ -> Format.fprintf ppf "<json>") ( = )

let test_jsonx_values () =
  let ok s = match Gcs_stdx.Jsonx.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  Alcotest.check jx "null" Gcs_stdx.Jsonx.Null (ok "null");
  Alcotest.check jx "bools" (Gcs_stdx.Jsonx.Bool true) (ok " true ");
  Alcotest.check jx "number" (Gcs_stdx.Jsonx.Num (-3.25)) (ok "-3.25");
  Alcotest.check jx "exponent" (Gcs_stdx.Jsonx.Num 1200.0) (ok "1.2e3");
  Alcotest.check jx "string escapes"
    (Gcs_stdx.Jsonx.Str "a\"b\\c\nd\te/")
    (ok {|"a\"b\\c\nd\te\/"|});
  Alcotest.check jx "unicode escape" (Gcs_stdx.Jsonx.Str "A\xc3\xa9")
    (ok {|"\u0041\u00e9"|});
  Alcotest.check jx "nested"
    (Gcs_stdx.Jsonx.Obj
       [
         ("xs", Gcs_stdx.Jsonx.Arr [ Gcs_stdx.Jsonx.Num 1.0; Gcs_stdx.Jsonx.Null ]);
         ("o", Gcs_stdx.Jsonx.Obj []);
       ])
    (ok {|{"xs":[1,null],"o":{}}|})

let test_jsonx_rejects () =
  List.iter
    (fun s ->
      match Gcs_stdx.Jsonx.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "tru";
      "1 2";
      "\"unterminated";
      "\"bad \\x escape\"" |> String.map (fun c -> c);
      "{\"a\" 1}";
    ]

let test_jsonx_accessors () =
  match Gcs_stdx.Jsonx.of_string {|{"s":"v","n":2,"xs":[1]}|} with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check (option string)) "member+string" (Some "v")
        (Option.bind (Gcs_stdx.Jsonx.member "s" v) Gcs_stdx.Jsonx.to_string);
      Alcotest.(check (option (float 0.0001))) "member+float" (Some 2.0)
        (Option.bind (Gcs_stdx.Jsonx.member "n" v) Gcs_stdx.Jsonx.to_float);
      Alcotest.(check bool) "kind mismatch is None" true
        (Option.bind (Gcs_stdx.Jsonx.member "s" v) Gcs_stdx.Jsonx.to_float
        = None);
      Alcotest.(check bool) "missing member" true
        (Gcs_stdx.Jsonx.member "zz" v = None)

(* ------------------------------------------------------------------ *)
(* Graphx: the cycle detector under both lock-order analyses. *)

let sccs edges =
  Gcs_stdx.Graphx.cyclic_sccs ~compare:String.compare ~edges

let test_graphx_acyclic () =
  Alcotest.(check (list (list string)))
    "a chain has no cyclic SCC" []
    (sccs [ ("a", "b"); ("b", "c"); ("a", "c") ])

let test_graphx_two_cycle () =
  Alcotest.(check (list (list string)))
    "inverted pair" [ [ "a"; "b" ] ]
    (sccs [ ("a", "b"); ("b", "a") ])

let test_graphx_self_loop () =
  Alcotest.(check (list (list string)))
    "self-edge is a cycle" [ [ "x" ] ]
    (sccs [ ("x", "x"); ("x", "y") ])

let test_graphx_two_components () =
  Alcotest.(check (list (list string)))
    "distinct cycles kept apart, sorted"
    [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (sccs [ ("c", "d"); ("d", "c"); ("a", "b"); ("b", "a"); ("b", "c") ])

let test_graphx_edge_order_irrelevant () =
  let edges = [ ("a", "b"); ("b", "c"); ("c", "a"); ("c", "d") ] in
  Alcotest.(check (list (list string)))
    "deterministic at any edge order"
    (sccs edges)
    (sccs (List.rev edges))

let test_graphx_reachable () =
  let reach =
    Gcs_stdx.Graphx.reachable ~compare:String.compare
      ~edges:[ ("a", "b"); ("b", "c"); ("c", "a"); ("x", "y") ]
  in
  Alcotest.(check (list string))
    "cycle members reach themselves" [ "a"; "b"; "c" ] (reach "a");
  Alcotest.(check (list string)) "dag tail" [ "y" ] (reach "x");
  Alcotest.(check (list string)) "sink reaches nothing" [] (reach "y")

let () =
  Alcotest.run "stdx"
    [
      ( "graphx",
        [
          Alcotest.test_case "acyclic" `Quick test_graphx_acyclic;
          Alcotest.test_case "two-cycle" `Quick test_graphx_two_cycle;
          Alcotest.test_case "self-loop" `Quick test_graphx_self_loop;
          Alcotest.test_case "two components" `Quick
            test_graphx_two_components;
          Alcotest.test_case "edge order irrelevant" `Quick
            test_graphx_edge_order_irrelevant;
          Alcotest.test_case "reachable" `Quick test_graphx_reachable;
        ] );
      ( "seqx",
        [
          Alcotest.test_case "is_prefix" `Quick test_is_prefix;
          Alcotest.test_case "consistent" `Quick test_consistent;
          Alcotest.test_case "lub" `Quick test_lub;
          Alcotest.test_case "nth1" `Quick test_nth1;
          Alcotest.test_case "take/drop" `Quick test_take_drop;
          Alcotest.test_case "applyall" `Quick test_applyall;
          Alcotest.test_case "index_of" `Quick test_index_of;
          Alcotest.test_case "longest_common_prefix" `Quick test_lcp;
          Alcotest.test_case "sorted helpers" `Quick test_sorted_helpers;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "pick/shuffle" `Quick test_prng_pick_shuffle;
        ] );
      ( "ixq",
        [
          Alcotest.test_case "basics" `Quick test_ixq_basics;
          Alcotest.test_case "persistence" `Quick test_ixq_persistence;
        ] );
      ( "fq",
        [ Alcotest.test_case "basics" `Quick test_fq_basics ] );
      ( "tape",
        [
          Alcotest.test_case "basics" `Quick test_tape_basics;
          Alcotest.test_case "persistence" `Quick test_tape_persistence;
          Alcotest.test_case "equal" `Quick test_tape_equal;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "gauges" `Quick test_metrics_gauges;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "kind clash" `Quick test_metrics_kind_clash;
          Alcotest.test_case "deterministic JSON snapshot" `Quick
            test_metrics_json_deterministic;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "values" `Quick test_jsonx_values;
          Alcotest.test_case "rejects malformed input" `Quick
            test_jsonx_rejects;
          Alcotest.test_case "accessors" `Quick test_jsonx_accessors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lub_is_upper_bound;
            prop_take_drop_append;
            prop_ixq_models_list;
            prop_fq_is_fifo;
            prop_tape_models_list;
            prop_tape_drop_snoc;
          ] );
    ]
