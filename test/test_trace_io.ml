(* Tests for the trace serialization: round trips (including adversarial
   strings), parse errors, and dump-then-check of real service runs. *)

open Gcs_core
open Gcs_impl

let procs = Proc.all ~n:4
let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
let config = To_service.make_config vs_config

let test_escape_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check (option string)) (String.escaped s) (Some s)
        (Trace_io.unescape (Trace_io.escape s)))
    [ ""; "plain"; "with space"; "with\nnewline"; "100%"; "a,b c%n"; " %s " ]

let prop_escape_roundtrip =
  QCheck.Test.make ~name:"escape/unescape roundtrip" ~count:300
    QCheck.(string_gen Gen.printable)
    (fun s -> Trace_io.unescape (Trace_io.escape s) = Some s)

let sample_to_trace =
  [
    Timed.action 1.0 (To_action.Bcast (0, "hello world"));
    Timed.status 2.0 (Fstatus.Proc_status (1, Fstatus.Bad));
    Timed.action 3.5 (To_action.Brcv { src = 0; dst = 2; value = "hello world" });
    Timed.status 4.0 (Fstatus.Link_status (0, 3, Fstatus.Ugly));
  ]

let test_to_roundtrip () =
  match Trace_io.to_of_string (Trace_io.to_to_string sample_to_trace) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check int) "same length" (List.length sample_to_trace)
        (List.length parsed);
      List.iter2
        (fun (a : _ Timed.event) (b : _ Timed.event) ->
          Alcotest.(check (float 0.0001)) "time" a.Timed.time b.Timed.time;
          Alcotest.(check bool) "item" true (a.Timed.item = b.Timed.item))
        sample_to_trace parsed

let test_vs_roundtrip () =
  let g1 = View_id.make ~num:1 ~origin:2 in
  let trace =
    [
      Timed.action 0.5 (Vs_action.Gpsnd { sender = 0; msg = "m 1" });
      Timed.action 1.0 (Vs_action.Newview { proc = 1; view = View.make g1 [ 0; 1 ] });
      Timed.action 1.5 (Vs_action.Gprcv { src = 0; dst = 1; msg = "m 1" });
      Timed.action 2.0 (Vs_action.Safe { src = 0; dst = 1; msg = "m 1" });
      Timed.status 3.0 (Fstatus.Proc_status (2, Fstatus.Good));
    ]
  in
  match Trace_io.vs_of_string (Trace_io.vs_to_string trace) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check int) "same length" (List.length trace) (List.length parsed);
      List.iter2
        (fun (a : _ Timed.event) (b : _ Timed.event) ->
          Alcotest.(check bool) "event equal" true
            (a.Timed.time = b.Timed.time
            &&
            match (a.Timed.item, b.Timed.item) with
            | Timed.Action x, Timed.Action y ->
                Vs_action.equal ~equal_msg:String.equal x y
            | Timed.Status x, Timed.Status y -> x = y
            | _ -> false))
        trace parsed

let test_parse_errors () =
  let reject name text parse =
    match parse text with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error _ -> ()
  in
  reject "bad time" "xx bcast 0 v" Trace_io.to_of_string;
  reject "unknown event" "1.0 frob 0 v" Trace_io.to_of_string;
  reject "bad proc" "1.0 bcast zero v" Trace_io.to_of_string;
  reject "truncated" "1.0 brcv 0" Trace_io.to_of_string;
  reject "bad view id" "1.0 newview 0 1-2 0,1" Trace_io.vs_of_string;
  reject "bad members" "1.0 newview 0 1.2 0,x" Trace_io.vs_of_string

let test_dump_and_check_real_run () =
  (* Dump a real run to text, parse it back, and conformance-check it. *)
  let workload =
    List.init 8 (fun k -> (10.0 +. (9.0 *. float_of_int k), k mod 4, Printf.sprintf "v%d" k))
  in
  let run = To_service.run config ~workload ~failures:[] ~until:300.0 ~seed:3 in
  let dumped = Trace_io.to_to_string (To_service.client_trace run) in
  match Trace_io.to_of_string dumped with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      let to_params = { To_machine.procs; equal_value = Value.equal } in
      (match
         To_trace_checker.check to_params (List.map snd (Timed.actions parsed))
       with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "parsed trace rejected: %s"
            (Format.asprintf "%a" To_trace_checker.pp_error e));
      Alcotest.(check bool) "time ordering preserved" true
        (Timed.is_time_ordered parsed)

(* ------------------ fuzz-generated schedule dumps ------------------- *)

(* The fuzzer dumps a shrunk reproducer's client trace with
   [to_to_string]; dumping must round-trip byte-for-byte even when the
   workload carries adversarial values. *)
let test_fuzz_schedule_dump () =
  let input =
    Gcs_fuzz.Input.normalize
      {
        Gcs_fuzz.Input.seed = 13;
        steps =
          [
            {
              Gcs_nemesis.Scenario.at = 25.0;
              op = Gcs_nemesis.Scenario.Partition [ [ 0; 1 ]; [ 2; 3 ] ];
            };
            { Gcs_nemesis.Scenario.at = 70.0; op = Gcs_nemesis.Scenario.Heal };
          ];
        workload =
          [
            (12.0, 0, "100% plain");
            (18.0, 1, "with space");
            (30.0, 2, "line\nbreak");
            (34.0, 3, "");
          ];
      }
  in
  let trace, verdict = Gcs_fuzz.Runner.replay ~config input in
  (match verdict with
  | None -> ()
  | Some f ->
      Alcotest.failf "clean fuzz schedule failed %s: %s" f.Gcs_fuzz.Runner.check
        f.Gcs_fuzz.Runner.detail);
  let dumped = Trace_io.to_to_string trace in
  match Trace_io.to_of_string dumped with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check string) "dump round-trips byte-for-byte" dumped
        (Trace_io.to_to_string parsed)

(* Serialization of a [newview] with no members: a degenerate line the
   parser must still invert (legality is the checker's business, not the
   format's). *)
let test_empty_view_roundtrip () =
  let trace =
    [
      Timed.action 1.0
        (Vs_action.Newview
           { proc = 0; view = View.make (View_id.make ~num:1 ~origin:0) [] });
    ]
  in
  let dumped = Trace_io.vs_to_string trace in
  match Trace_io.vs_of_string dumped with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check string) "empty view round-trips" dumped
        (Trace_io.vs_to_string parsed)

(* A maximum-length run: thousands of events with escape-heavy values.
   Guards against any quadratic or stack-unsafe path in the printer or
   parser before the CI fuzz job starts dumping large corpora. *)
let test_max_length_roundtrip () =
  let trace =
    List.concat
      (List.init 2500 (fun k ->
           let t = float_of_int k in
           [
             Timed.action t (To_action.Bcast (k mod 4, Printf.sprintf "v%%%d\n" k));
             Timed.action (t +. 0.5)
               (To_action.Brcv
                  {
                    src = k mod 4;
                    dst = (k + 1) mod 4;
                    value = Printf.sprintf "v%%%d\n" k;
                  });
           ]))
  in
  let dumped = Trace_io.to_to_string trace in
  match Trace_io.to_of_string dumped with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check int) "length" (List.length trace) (List.length parsed);
      Alcotest.(check string) "round-trips byte-for-byte" dumped
        (Trace_io.to_to_string parsed)

let () =
  Alcotest.run "trace_io"
    [
      ( "serialization",
        [
          Alcotest.test_case "escape roundtrip" `Quick test_escape_roundtrip;
          QCheck_alcotest.to_alcotest prop_escape_roundtrip;
          Alcotest.test_case "TO roundtrip" `Quick test_to_roundtrip;
          Alcotest.test_case "VS roundtrip" `Quick test_vs_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "dump + check a real run" `Quick
            test_dump_and_check_real_run;
        ] );
      ( "fuzz schedules",
        [
          Alcotest.test_case "fuzz schedule dump round-trips" `Quick
            test_fuzz_schedule_dump;
          Alcotest.test_case "empty view round-trips" `Quick
            test_empty_view_roundtrip;
          Alcotest.test_case "max-length run round-trips" `Quick
            test_max_length_roundtrip;
        ] );
    ]
