(* Direct unit tests of the VStoTO automaton's transitions (Figure 10),
   action by action, against hand-computed expectations. *)

open Gcs_automata
open Gcs_core

module Tape = Gcs_stdx.Tape

let procs = Proc.all ~n:3
let p0 = procs
let quorums = Quorum.majorities ~n:3
let params p = Vstoto.default_params ~me:p ~p0 ~quorums ()
let automaton p = Vstoto.automaton (params p)

let step p action state = Automaton.step_exn (automaton p) state action
let try_step p action state = (automaton p).Automaton.transition state action

let v0 = View.initial p0
let g1 = View_id.make ~num:1 ~origin:0
let v1 = View.make g1 [ 0; 1 ]
let label g seqno origin = Label.make ~id:g ~seqno ~origin

let test_initial_state () =
  let s = Vstoto.initial (params 0) in
  Alcotest.(check bool) "starts in v0" true
    (match s.Vstoto.current with Some v -> View.equal v v0 | None -> false);
  Alcotest.(check bool) "highprimary = g0" true
    (View_id.compare_opt s.Vstoto.highprimary (Some View_id.g0) = 0);
  Alcotest.(check bool) "primary initially (P0 is a quorum)" true
    (Vstoto.primary (params 0) s)

let test_bcast_label_gpsnd () =
  let s = Vstoto.initial (params 0) in
  let s = step 0 (Sys_action.Bcast (0, "x")) s in
  Alcotest.(check (list string))
    "bcast joins delay" [ "x" ]
    (Tape.to_list s.Vstoto.delay);
  let s = step 0 (Sys_action.Label_act (0, "x")) s in
  Alcotest.(check int) "delay consumed" 0 (Tape.length s.Vstoto.delay);
  Alcotest.(check int) "nextseqno advanced" 2 s.Vstoto.nextseqno;
  let l = label View_id.g0 1 0 in
  Alcotest.(check bool) "label in buffer" true
    (Tape.exists (Label.equal l) s.Vstoto.buffer);
  Alcotest.(check (option string)) "content holds the value" (Some "x")
    (Label.Map.find_opt l s.Vstoto.content);
  (* The send carries exactly the labelled pair and drains the buffer. *)
  let send =
    Sys_action.Vs (Vs_action.Gpsnd { sender = 0; msg = Msg.App (l, "x") })
  in
  let s = step 0 send s in
  Alcotest.(check int) "buffer drained" 0 (Tape.length s.Vstoto.buffer);
  (* A second send with nothing buffered is disabled. *)
  Alcotest.(check bool) "no spurious send" true (try_step 0 send s = None)

let test_label_requires_view_and_normal () =
  (* Processor outside any view cannot label. *)
  let outside =
    Vstoto.initial { (params 0) with Vstoto.me = 0; p0 = [ 1; 2 ] }
  in
  let outside = step 0 (Sys_action.Bcast (0, "x")) outside in
  Alcotest.(check bool) "no label without a view" true
    (try_step 0 (Sys_action.Label_act (0, "x")) outside = None);
  (* During recovery (status = send) the corrected precondition blocks
     labelling. *)
  let s = Vstoto.initial (params 0) in
  let s = step 0 (Sys_action.Bcast (0, "x")) s in
  let s = step 0 (Sys_action.Vs (Vs_action.Newview { proc = 0; view = v1 })) s in
  Alcotest.(check bool) "status is send after newview" true
    (s.Vstoto.status = Vstoto.Send);
  Alcotest.(check bool) "no label during recovery" true
    (try_step 0 (Sys_action.Label_act (0, "x")) s = None)

let test_gprcv_app_order_append () =
  let s = Vstoto.initial (params 1) in
  let l = label View_id.g0 1 0 in
  let rcv =
    Sys_action.Vs (Vs_action.Gprcv { src = 0; dst = 1; msg = Msg.App (l, "x") })
  in
  let s = step 1 rcv s in
  Alcotest.(check (option string)) "content recorded" (Some "x")
    (Label.Map.find_opt l s.Vstoto.content);
  Alcotest.(check bool) "order appended (primary view)" true
    (Tape.exists (Label.equal l) s.Vstoto.order);
  (* In a non-primary view (a singleton is not a majority of 3) the same
     delivery does not enter order. *)
  let v_solo = View.make g1 [ 1 ] in
  let s2 = Vstoto.initial (params 1) in
  let s2 =
    step 1 (Sys_action.Vs (Vs_action.Newview { proc = 1; view = v_solo })) s2
  in
  let l1 = label g1 1 0 in
  let s2 =
    step 1
      (Sys_action.Vs
         (Vs_action.Gprcv { src = 0; dst = 1; msg = Msg.App (l1, "y") }))
      s2
  in
  Alcotest.(check bool) "non-primary: no order append" false
    (Tape.exists (Label.equal l1) s2.Vstoto.order)

(* Build a summary by hand. *)
let summary ~con ~ord ~next ~high =
  let con =
    List.fold_left
      (fun acc (l, v) -> Label.Map.add l v acc)
      Label.Map.empty con
  in
  Summary.make ~con ~ord ~next ~high

let test_establishment_primary () =
  (* Processor 0 moves to a primary view {0,1} (quorum of 3 is 2) and
     receives both summaries; the one with the higher highprimary wins the
     short order, and the remaining labels are appended in label order. *)
  let la = label View_id.g0 1 1 and lb = label View_id.g0 1 0 in
  let s = Vstoto.initial (params 0) in
  let s = step 0 (Sys_action.Vs (Vs_action.Newview { proc = 0; view = v1 })) s in
  (* Own summary must be sent before collecting. *)
  let own = Vstoto.summary_of_state s in
  let s =
    step 0 (Sys_action.Vs (Vs_action.Gpsnd { sender = 0; msg = Msg.Summary own })) s
  in
  Alcotest.(check bool) "collect status" true (s.Vstoto.status = Vstoto.Collect);
  let x1 = summary ~con:[ (lb, "b") ] ~ord:[] ~next:1 ~high:(Some View_id.g0) in
  let x2 =
    summary ~con:[ (la, "a"); (lb, "b") ] ~ord:[ la ] ~next:2
      ~high:(Some View_id.g0)
  in
  let s =
    step 0
      (Sys_action.Vs (Vs_action.Gprcv { src = 0; dst = 0; msg = Msg.Summary x1 }))
      s
  in
  Alcotest.(check bool) "still collecting" true (s.Vstoto.status = Vstoto.Collect);
  let s =
    step 0
      (Sys_action.Vs (Vs_action.Gprcv { src = 1; dst = 0; msg = Msg.Summary x2 }))
      s
  in
  Alcotest.(check bool) "established (normal)" true
    (s.Vstoto.status = Vstoto.Normal);
  (* chosenrep is the larger id among max-high holders = 1; shortorder =
     [la]; fullorder appends lb (the only other known label). *)
  Alcotest.(check bool) "order = [la; lb]" true
    (List.equal Label.equal (Tape.to_list s.Vstoto.order) [ la; lb ]);
  Alcotest.(check bool) "highprimary = the new primary view" true
    (View_id.compare_opt s.Vstoto.highprimary (Some g1) = 0);
  Alcotest.(check int) "nextconfirm = maxnextconfirm" 2 s.Vstoto.nextconfirm

let test_establishment_non_primary () =
  (* View {0} alone: not a quorum, so the adopted order is the chosen
     representative's order only, and highprimary is inherited. *)
  let g2 = View_id.make ~num:2 ~origin:0 in
  let v_solo = View.make g2 [ 0 ] in
  let la = label View_id.g0 1 1 and lb = label View_id.g0 2 1 in
  let s = Vstoto.initial (params 0) in
  let s =
    step 0 (Sys_action.Vs (Vs_action.Newview { proc = 0; view = v_solo })) s
  in
  let own = Vstoto.summary_of_state s in
  let s =
    step 0 (Sys_action.Vs (Vs_action.Gpsnd { sender = 0; msg = Msg.Summary own })) s
  in
  let x =
    summary ~con:[ (la, "a"); (lb, "b") ] ~ord:[ la; lb ] ~next:2
      ~high:(Some View_id.g0)
  in
  let s =
    step 0
      (Sys_action.Vs (Vs_action.Gprcv { src = 0; dst = 0; msg = Msg.Summary x }))
      s
  in
  Alcotest.(check bool) "established" true (s.Vstoto.status = Vstoto.Normal);
  Alcotest.(check bool) "shortorder adopted" true
    (List.equal Label.equal (Tape.to_list s.Vstoto.order) [ la; lb ]);
  Alcotest.(check bool) "highprimary inherited, not the new view" true
    (View_id.compare_opt s.Vstoto.highprimary (Some View_id.g0) = 0);
  (* Nothing can be confirmed in a non-primary view. *)
  Alcotest.(check bool) "confirm disabled" true
    (try_step 0 (Sys_action.Confirm 0) s = None)

let test_safe_confirm_brcv_pipeline () =
  (* In the initial primary view: deliver a value, mark it safe, confirm,
     and report to the client, checking each precondition. *)
  let l = label View_id.g0 1 1 in
  let s = Vstoto.initial (params 0) in
  let rcv =
    Sys_action.Vs (Vs_action.Gprcv { src = 1; dst = 0; msg = Msg.App (l, "z") })
  in
  let s = step 0 rcv s in
  Alcotest.(check bool) "confirm blocked before safe" true
    (try_step 0 (Sys_action.Confirm 0) s = None);
  let s =
    step 0 (Sys_action.Vs (Vs_action.Safe { src = 1; dst = 0; msg = Msg.App (l, "z") })) s
  in
  Alcotest.(check bool) "label is safe" true
    (Label.Set.mem l s.Vstoto.safe_labels);
  let s = step 0 (Sys_action.Confirm 0) s in
  Alcotest.(check int) "confirmed" 2 s.Vstoto.nextconfirm;
  (* brcv must name the right source. *)
  Alcotest.(check bool) "brcv with wrong source blocked" true
    (try_step 0 (Sys_action.Brcv { src = 2; dst = 0; value = "z" }) s = None);
  let s = step 0 (Sys_action.Brcv { src = 1; dst = 0; value = "z" }) s in
  Alcotest.(check int) "reported" 2 s.Vstoto.nextreport;
  Alcotest.(check bool) "no double report" true
    (try_step 0 (Sys_action.Brcv { src = 1; dst = 0; value = "z" }) s = None)

let test_newview_resets () =
  let l = label View_id.g0 1 0 in
  let s = Vstoto.initial (params 0) in
  let s = step 0 (Sys_action.Bcast (0, "x")) s in
  let s = step 0 (Sys_action.Label_act (0, "x")) s in
  let s =
    step 0 (Sys_action.Vs (Vs_action.Safe { src = 0; dst = 0; msg = Msg.App (l, "x") })) s
  in
  let s = step 0 (Sys_action.Vs (Vs_action.Newview { proc = 0; view = v1 })) s in
  Alcotest.(check int) "buffer cleared" 0 (Tape.length s.Vstoto.buffer);
  Alcotest.(check int) "nextseqno reset" 1 s.Vstoto.nextseqno;
  Alcotest.(check bool) "safe-labels cleared" true
    (Label.Set.is_empty s.Vstoto.safe_labels);
  Alcotest.(check bool) "gotstate cleared" true
    (Proc.Map.is_empty s.Vstoto.gotstate);
  (* Content and order survive the view change (they feed the summary). *)
  Alcotest.(check bool) "content survives" true
    (Label.Map.mem l s.Vstoto.content)

let test_safe_exchange_completion () =
  (* All members' summaries safe in a primary view marks every fullorder
     label safe. *)
  let la = label View_id.g0 1 1 in
  let s = Vstoto.initial (params 0) in
  let s = step 0 (Sys_action.Vs (Vs_action.Newview { proc = 0; view = v1 })) s in
  let own = Vstoto.summary_of_state s in
  let s =
    step 0 (Sys_action.Vs (Vs_action.Gpsnd { sender = 0; msg = Msg.Summary own })) s
  in
  let x2 = summary ~con:[ (la, "a") ] ~ord:[ la ] ~next:1 ~high:(Some View_id.g0) in
  let s =
    step 0 (Sys_action.Vs (Vs_action.Gprcv { src = 0; dst = 0; msg = Msg.Summary own })) s
  in
  let s =
    step 0 (Sys_action.Vs (Vs_action.Gprcv { src = 1; dst = 0; msg = Msg.Summary x2 })) s
  in
  Alcotest.(check bool) "established" true (s.Vstoto.status = Vstoto.Normal);
  let s =
    step 0 (Sys_action.Vs (Vs_action.Safe { src = 0; dst = 0; msg = Msg.Summary own })) s
  in
  Alcotest.(check bool) "not yet all safe" true
    (Label.Set.is_empty s.Vstoto.safe_labels);
  let s =
    step 0 (Sys_action.Vs (Vs_action.Safe { src = 1; dst = 0; msg = Msg.Summary x2 })) s
  in
  Alcotest.(check bool) "exchange safe marks fullorder labels" true
    (Label.Set.mem la s.Vstoto.safe_labels)

let () =
  Alcotest.run "vstoto_units"
    [
      ( "figure 10",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "bcast / label / gpsnd" `Quick
            test_bcast_label_gpsnd;
          Alcotest.test_case "label preconditions" `Quick
            test_label_requires_view_and_normal;
          Alcotest.test_case "gprcv append rules" `Quick
            test_gprcv_app_order_append;
          Alcotest.test_case "establishment (primary)" `Quick
            test_establishment_primary;
          Alcotest.test_case "establishment (non-primary)" `Quick
            test_establishment_non_primary;
          Alcotest.test_case "safe / confirm / brcv pipeline" `Quick
            test_safe_confirm_brcv_pipeline;
          Alcotest.test_case "newview resets" `Quick test_newview_resets;
          Alcotest.test_case "safe exchange completion" `Quick
            test_safe_exchange_completion;
        ] );
    ]
