(* Gcs_stdx.Lock — the dynamic half of the domain-safety analysis.

   Covers the wrapper semantics (exclusion, exception safety), the
   observation registry (held-set, acquisition-order edges, contention
   counters, Metrics mirroring), and cycle detection on the observed
   lock graph. The inversion fixture deliberately acquires two locks in
   both orders from ONE domain, sequentially: the cycle is recorded
   without any risk of actually deadlocking the test, and it is the
   exact shape the static C4 pass flags in test_lint.ml — the two
   detectors cross-validate on it. *)

module Lock = Gcs_stdx.Lock
module Metrics = Gcs_stdx.Metrics

let test_with_lock_excludes () =
  let l = Lock.create "counter" in
  let n = ref 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Lock.with_lock l (fun () -> n := !n + 1)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "all increments survive" 4000 !n

let test_with_lock_exception_safe () =
  let l = Lock.create "raiser" in
  (try Lock.with_lock l (fun () -> failwith "boom") with Failure _ -> ());
  (* A leaked lock would deadlock here; a held-set leak would show in
     [held]. *)
  Alcotest.(check bool) "reacquirable after a raise" true
    (Lock.with_lock l (fun () -> true));
  Alcotest.(check (list string)) "held-set empty after a raise" []
    (Lock.held ())

let test_held_stack () =
  let r = Lock.registry () in
  let a = Lock.create ~registry:r "a" in
  let b = Lock.create ~registry:r "b" in
  Lock.with_lock a (fun () ->
      Lock.with_lock b (fun () ->
          Alcotest.(check (list string))
            "innermost first" [ "b"; "a" ] (Lock.held ()));
      Alcotest.(check (list string)) "popped on exit" [ "a" ] (Lock.held ()));
  Alcotest.(check (list string)) "empty outside" [] (Lock.held ())

let test_edges_recorded () =
  let r = Lock.registry () in
  let a = Lock.create ~registry:r "a" in
  let b = Lock.create ~registry:r "b" in
  for _ = 1 to 3 do
    Lock.with_lock a (fun () -> Lock.with_lock b (fun () -> ()))
  done;
  let g = Lock.graph r in
  Alcotest.(check (list (triple string string int)))
    "one edge, observed thrice"
    [ ("a", "b", 3) ]
    g.Lock.edges;
  Alcotest.(check (list (list string))) "no cycle" [] g.Lock.cycles

let test_uninstrumented_records_nothing () =
  let r = Lock.registry () in
  let a = Lock.create ~registry:r "a" in
  let plain = Lock.create "plain" in
  Lock.with_lock plain (fun () -> Lock.with_lock a (fun () -> ()));
  let g = Lock.graph r in
  Alcotest.(check (list (triple string string int)))
    "unregistered locks contribute no edges" [] g.Lock.edges

let test_inversion_cycle_detected () =
  let r = Lock.registry () in
  let a = Lock.create ~registry:r "a" in
  let b = Lock.create ~registry:r "b" in
  (* Both orders, sequentially in this one domain: never deadlocks, but
     the observed graph gains a -> b and b -> a. The allow sanctions the
     deliberate inversion for the static C4 twin of this check. *)
  Lock.with_lock a (fun () -> Lock.with_lock b (fun () -> ()));
  Lock.with_lock b (fun () ->
      (Lock.with_lock a (fun () -> ()) [@gcs.lint.allow "C4"]));
  let g = Lock.graph r in
  Alcotest.(check (list (list string)))
    "order inversion is a cycle"
    [ [ "a"; "b" ] ]
    g.Lock.cycles

let test_self_edge_is_cycle () =
  let r = Lock.registry () in
  (* A genuinely recursive acquisition would deadlock the test, so
     stand in for it with two instances sharing one name: the graph
     merges instances by name, and the nest becomes a self-edge — the
     same signature a recursive acquisition leaves (recorded before the
     blocking attempt). *)
  let a = Lock.create ~registry:r "recursive" in
  let a2 = Lock.create ~registry:r "recursive" in
  Lock.with_lock a (fun () -> Lock.with_lock a2 (fun () -> ()));
  let g = Lock.graph r in
  Alcotest.(check (list (list string)))
    "same-name nest is a self-cycle"
    [ [ "recursive" ] ]
    g.Lock.cycles

let test_contention_counted () =
  let r = Lock.registry () in
  let l = Lock.create ~registry:r "hot" in
  let entered = Atomic.make false in
  Lock.with_lock l (fun () ->
      let d =
        Domain.spawn (fun () ->
            Atomic.set entered true;
            (* Statically this looks like a self-nest of [l], but the
               acquisition runs on the spawned domain, which holds
               nothing — the contention is the point of the test. *)
            (Lock.with_lock l (fun () -> ()) [@gcs.lint.allow "C4"]))
      in
      while not (Atomic.get entered) do
        Domain.cpu_relax ()
      done;
      (* Sleeping while holding a lock is exactly what C4 bans; here it
         is the point — the spawned domain must hit its try_lock while
         we still hold. *)
      (Unix.sleepf 0.05 [@gcs.lint.allow "C4"]);
      d)
  |> Domain.join;
  let g = Lock.graph r in
  let contended =
    List.fold_left
      (fun acc (name, _, c) -> if String.equal name "hot" then c else acc)
      0 g.Lock.locks
  in
  Alcotest.(check bool) "blocked acquisition counted" true (contended >= 1)

let test_metrics_mirrored () =
  let m = Metrics.create () in
  let r = Lock.registry ~metrics:m () in
  let l = Lock.create ~registry:r "mirrored" in
  for _ = 1 to 5 do
    Lock.with_lock l (fun () -> ())
  done;
  Alcotest.(check int) "acquisitions mirrored into metrics" 5
    (Metrics.counter m "lock.acquired.mirrored")

let test_wait_releases_and_reacquires () =
  let l = Lock.create "waiter" in
  let cond = Condition.create () in
  let ready = ref false in
  let woken = ref false in
  let d =
    Domain.spawn (fun () ->
        Lock.with_lock l (fun () ->
            ready := true;
            while not !woken do
              Lock.wait cond l
            done))
  in
  let rec poke () =
    let signaled =
      Lock.with_lock l (fun () ->
          if !ready then begin
            woken := true;
            Condition.broadcast cond;
            true
          end
          else false)
    in
    if not signaled then begin
      Unix.sleepf 0.002;
      poke ()
    end
  in
  poke ();
  Domain.join d;
  Alcotest.(check bool) "waiter woke and finished" true !woken

let () =
  Alcotest.run "lock"
    [
      ( "wrapper",
        [
          Alcotest.test_case "with_lock excludes across domains" `Quick
            test_with_lock_excludes;
          Alcotest.test_case "with_lock releases on raise" `Quick
            test_with_lock_exception_safe;
          Alcotest.test_case "wait releases and reacquires" `Quick
            test_wait_releases_and_reacquires;
        ] );
      ( "registry",
        [
          Alcotest.test_case "held-set stacks" `Quick test_held_stack;
          Alcotest.test_case "acquisition edges recorded" `Quick
            test_edges_recorded;
          Alcotest.test_case "uninstrumented locks record nothing" `Quick
            test_uninstrumented_records_nothing;
          Alcotest.test_case "contention counted" `Quick
            test_contention_counted;
          Alcotest.test_case "metrics mirrored" `Quick test_metrics_mirrored;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "inverted order is detected" `Quick
            test_inversion_cycle_detected;
          Alcotest.test_case "same-name nest is a self-cycle" `Quick
            test_self_edge_is_cycle;
        ] );
    ]
