(* Cross-transport conformance: the full oracle battery (TO/VS trace
   conformance, the Theorem 7.2 delivery bound, the VStoTO node-state
   invariants) over every fault case, on each backend.

   The sim profile runs in virtual time and is free; the bus profile runs
   the same cases in wall-clock time (a few seconds per case, early-stopped
   once the workload has visibly drained and the fault schedule has fully
   played). A failure prints the case, seed and offending oracle. *)

open Gcs_conformance

(* Every case submits workload_count values per processor; each of the
   n nodes must deliver all of them, so a passing case can never be an
   accidentally empty run. *)
let min_deliveries profile =
  let n =
    List.length profile.Suite.config.Gcs_impl.To_service.vs.Gcs_impl.Vs_node.procs
  in
  n * n * profile.Suite.workload_count

let check_profile profile () =
  let outcomes = Suite.run_all profile ~seed:7 in
  Alcotest.(check int) "all cases ran" 5 (List.length outcomes);
  List.iter
    (fun o ->
      if not (Suite.passed o) then
        Alcotest.failf "%s" (Format.asprintf "%a" Suite.pp_outcome o);
      if o.Suite.deliveries < min_deliveries profile then
        Alcotest.failf "%s: only %d deliveries — vacuous run?" o.Suite.case
          o.Suite.deliveries)
    outcomes

(* The Skeen backend's battery: its own oracle set (group order, node
   invariants, completeness on the clean case) over the same five fault
   shapes. Faulty cases can legitimately lose liveness (no retransmit),
   so the vacuity floor is per-case: the clean case must deliver the
   whole mixed-addressing workload, every case must deliver something. *)
let check_skeen_profile profile () =
  let outcomes = Skeen_suite.run_all profile ~seed:7 in
  Alcotest.(check int) "all cases ran" 5 (List.length outcomes);
  let full =
    Gcs_skeen.Skeen.expected_deliveries profile.Skeen_suite.config
      (Skeen_suite.workload profile)
  in
  List.iter
    (fun o ->
      if not (Skeen_suite.passed o) then
        Alcotest.failf "%s" (Format.asprintf "%a" Skeen_suite.pp_outcome o);
      let floor = if o.Skeen_suite.case = "clean" then full else 1 in
      if o.Skeen_suite.deliveries < floor then
        Alcotest.failf "%s: only %d deliveries (floor %d) — vacuous run?"
          o.Skeen_suite.case o.Skeen_suite.deliveries floor)
    outcomes

let () =
  Alcotest.run "cross-transport conformance"
    [
      ( "sim",
        [
          Alcotest.test_case "all cases, all oracles" `Quick
            (check_profile (Suite.sim_profile ()));
          (* Batching on: submissions coalesce into Msg.Batch gpsnds; the
             same oracle battery plus the batch view-boundary check must
             still hold, including per-sender FIFO and total order via
             TO-conformance. *)
          Alcotest.test_case "all cases, all oracles (batched)" `Quick
            (check_profile (Suite.sim_profile ~batch_window:2.0 ()));
          Alcotest.test_case "skeen: all cases, skeen oracles" `Quick
            (check_skeen_profile (Skeen_suite.sim_profile ()));
        ] );
      ( "bus",
        [
          Alcotest.test_case "all cases, all oracles" `Slow
            (check_profile (Suite.bus_profile ()));
          Alcotest.test_case "all cases, all oracles (batched)" `Slow
            (check_profile (Suite.bus_profile ~batch_window:0.2 ()));
          Alcotest.test_case "skeen: all cases, skeen oracles" `Slow
            (check_skeen_profile (Skeen_suite.bus_profile ()));
        ] );
    ]
