(* End-to-end tests: the VStoTO automaton over the Section 8 VS
   implementation in the simulator (Theorems 7.1/7.2, operationally).
   Safety: every client trace is a TO-machine trace, under arbitrary
   failure scripts. Performance/fault-tolerance: after stabilization,
   TO-property(b', d', Q) holds with this implementation's bounds. *)

open Gcs_core
open Gcs_impl

let n = 5
let procs = Proc.all ~n
let delta = 1.0

let vs_config = { Vs_node.procs; p0 = procs; pi = 8.0; mu = 10.0; delta }
let config = To_service.make_config vs_config

(* Theorem 7.1 shape: TO stabilizes within b' = b + d and delivers within
   d' = d; our variant's bounds replace the paper's. *)
let to_b = Vs_node.impl_b vs_config +. Vs_node.impl_d vs_config
let to_d = Vs_node.impl_d vs_config +. (4.0 *. delta)

let workload ~senders ~from_time ~spacing ~count =
  List.concat_map
    (fun (i, p) ->
      List.init count (fun k ->
          ( from_time +. (float_of_int k *. spacing) +. (0.13 *. float_of_int i),
            p,
            Printf.sprintf "v%d.%d" p k )))
    (List.mapi (fun i p -> (i, p)) senders)

let check_to_conforms name run =
  match To_service.to_conforms config run with
  | Ok () -> ()
  | Error err ->
      Alcotest.failf "%s: client trace rejected by TO checker: %s" name
        (Format.asprintf "%a" To_trace_checker.pp_error err)

let check_vs_conforms name run =
  match To_service.vs_conforms config run with
  | Ok () -> ()
  | Error err ->
      Alcotest.failf "%s: VS trace rejected: %s" name
        (Format.asprintf "%a" Vs_trace_checker.pp_error err)

let partition_at t parts =
  List.map (fun e -> (t, e)) (Fstatus.partition_events ~parts)

let heal_at t = List.map (fun e -> (t, e)) (Fstatus.heal_events ~procs)

let test_steady_state () =
  List.iter
    (fun seed ->
      let run =
        To_service.run config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:9.0 ~count:6)
          ~failures:[] ~until:400.0 ~seed
      in
      check_to_conforms "steady" run;
      check_vs_conforms "steady" run;
      Alcotest.(check bool) "deliveries happened" true
        (To_service.deliveries run > 0))
    [ 1; 2; 3 ]

let test_steady_state_to_property () =
  let until = 500.0 in
  let run =
    To_service.run config
      ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:11.0 ~count:8)
      ~failures:[] ~until ~seed:5
  in
  let report =
    To_property.check ~b:to_b ~d:to_d ~q:procs ~horizon:until
      (To_service.client_trace run)
  in
  if not (To_property.holds report) then
    Alcotest.failf "TO-property fails in steady state: %s"
      (Format.asprintf "%a" To_property.pp_report report)

let test_partition_majority_confirms () =
  (* During a partition, the majority side keeps delivering; Q = majority. *)
  let q = [ 0; 1; 2 ] in
  let until = 600.0 in
  let failures = partition_at 60.0 [ q; [ 3; 4 ] ] in
  let run =
    To_service.run config
      ~workload:(workload ~senders:q ~from_time:150.0 ~spacing:11.0 ~count:8)
      ~failures ~until ~seed:11
  in
  check_to_conforms "partition majority" run;
  let report =
    To_property.check ~b:to_b ~d:to_d ~q ~horizon:until
      (To_service.client_trace run)
  in
  if not (To_property.holds report) then
    Alcotest.failf "TO-property fails on majority side: %s"
      (Format.asprintf "%a" To_property.pp_report report)

let test_minority_blocks () =
  (* The minority side must not confirm anything sent after the split (it
     has no primary view). Safety: no deliveries of post-split minority
     values anywhere until heal; here there is no heal. *)
  let until = 500.0 in
  let failures = partition_at 60.0 [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let run =
    To_service.run config
      ~workload:(workload ~senders:[ 3; 4 ] ~from_time:100.0 ~spacing:9.0 ~count:5)
      ~failures ~until ~seed:13
  in
  check_to_conforms "minority" run;
  (* The only submissions are post-split at the minority, which has no
     primary view: nothing may be confirmed anywhere. *)
  Alcotest.(check int) "no deliveries of post-split minority values" 0
    (To_service.deliveries run)

let test_heal_merges_minority_values () =
  (* Values submitted in the minority during the partition must be
     delivered everywhere after the heal (the reconciliation protocol at
     work). TO-property with Q = all processors and l = heal time requires
     exactly this. *)
  let until = 800.0 in
  let failures = partition_at 60.0 [ [ 0; 1; 2 ]; [ 3; 4 ] ] @ heal_at 300.0 in
  let run =
    To_service.run config
      ~workload:
        (workload ~senders:procs ~from_time:100.0 ~spacing:13.0 ~count:6)
      ~failures ~until ~seed:17
  in
  check_to_conforms "heal" run;
  check_vs_conforms "heal" run;
  let report =
    To_property.check ~b:to_b ~d:to_d ~q:procs ~horizon:until
      (To_service.client_trace run)
  in
  if not (To_property.holds report) then
    Alcotest.failf "TO-property fails after heal: %s"
      (Format.asprintf "%a" To_property.pp_report report);
  (* Explicitly: some value from processor 3 or 4 reached processor 0. *)
  let minority_merged =
    List.exists
      (fun (_, a) ->
        match a with
        | To_action.Brcv { src; dst; _ } -> (src = 3 || src = 4) && dst = 0
        | _ -> false)
      (Timed.actions (To_service.client_trace run))
  in
  Alcotest.(check bool) "minority values merged after heal" true
    minority_merged

let test_crash_recover_preserves_order () =
  let until = 700.0 in
  let all_links_to p status t =
    List.concat_map
      (fun q ->
        if Proc.equal p q then []
        else
          [
            (t, Fstatus.Link_status (p, q, status));
            (t, Fstatus.Link_status (q, p, status));
          ])
      procs
  in
  let failures =
    ((100.0, Fstatus.Proc_status (2, Fstatus.Bad)) :: all_links_to 2 Fstatus.Bad 100.0)
    @ ((250.0, Fstatus.Proc_status (2, Fstatus.Good)) :: all_links_to 2 Fstatus.Good 250.0)
  in
  let run =
    To_service.run config
      ~workload:(workload ~senders:[ 0; 4 ] ~from_time:50.0 ~spacing:9.0 ~count:12)
      ~failures ~until ~seed:19
  in
  check_to_conforms "crash+recover" run

let test_stable_storage_variant () =
  (* The Keidar–Dolev-style variant trades latency for stable storage. It
     must still satisfy TO, and its delivery latency must exceed the
     direct variant's. *)
  let latency = 5.0 in
  let ss_config =
    To_service.make_config ~stable_storage_latency:latency vs_config
  in
  let wl = workload ~senders:procs ~from_time:5.0 ~spacing:11.0 ~count:6 in
  let direct = To_service.run config ~workload:wl ~failures:[] ~until:500.0 ~seed:23 in
  let stable =
    To_service.run ss_config ~workload:wl ~failures:[] ~until:500.0 ~seed:23
  in
  (match To_service.to_conforms ss_config stable with
  | Ok () -> ()
  | Error err ->
      Alcotest.failf "stable-storage trace rejected: %s"
        (Format.asprintf "%a" To_trace_checker.pp_error err));
  let mean_latency run =
    let sends = Hashtbl.create 64 in
    let total = ref 0.0 and count = ref 0 in
    List.iter
      (fun (t, a) ->
        match a with
        | To_action.Bcast (p, v) -> Hashtbl.replace sends (p, v) t
        | To_action.Brcv { src; value; _ } -> (
            match Hashtbl.find_opt sends (src, value) with
            | Some t0 ->
                total := !total +. (t -. t0);
                incr count
            | None -> ())
        | To_action.To_order _ -> ())
      (Timed.actions (To_service.client_trace run));
    if !count = 0 then 0.0 else !total /. float_of_int !count
  in
  let direct_latency = mean_latency direct in
  let stable_latency = mean_latency stable in
  Alcotest.(check bool)
    (Printf.sprintf "stable storage adds latency (%.2f vs %.2f)" stable_latency
       direct_latency)
    true
    (stable_latency > direct_latency)

let test_batching_variant () =
  (* Batched submission: a window wide enough to cover several client
     submissions per processor must produce real multi-value batches
     (to.batch_size max > 1), deliver every value exactly once per node,
     and still pass the TO and VS conformance checkers — batched delivery
     preserves per-sender FIFO and the total order. *)
  let b_config = To_service.make_config ~batch_window:3.0 vs_config in
  (* Bursts: several values per sender inside one window. *)
  let wl =
    List.concat_map
      (fun p ->
        List.init 4 (fun k ->
            ( 5.0 +. (float_of_int p *. 0.1) +. (float_of_int k *. 0.5),
              p,
              Printf.sprintf "b%d.%d" p k )))
      procs
  in
  let run = To_service.run b_config ~workload:wl ~failures:[] ~until:400.0 ~seed:31 in
  (match To_service.to_conforms b_config run with
  | Ok () -> ()
  | Error err ->
      Alcotest.failf "batched trace rejected by TO checker: %s"
        (Format.asprintf "%a" To_trace_checker.pp_error err));
  (match To_service.vs_conforms b_config run with
  | Ok () -> ()
  | Error err ->
      Alcotest.failf "batched VS trace rejected: %s"
        (Format.asprintf "%a" Vs_trace_checker.pp_error err));
  Alcotest.(check int) "every node delivers the whole workload"
    (n * List.length wl)
    (To_service.deliveries run);
  match Gcs_stdx.Metrics.histogram run.To_service.metrics "to.batch_size" with
  | None -> Alcotest.fail "no to.batch_size observations — batching vacuous"
  | Some (_, _, _, max_batch) ->
      Alcotest.(check bool)
        (Printf.sprintf "multi-value batches formed (max %.0f)" max_batch)
        true (max_batch > 1.5)

let test_batching_timer_invariant () =
  (* Drive the TO-service handlers directly and pin the flush-timer
     contract: armed exactly on the empty→nonempty staging transition,
     every due entry drained per firing, re-armed with a strictly
     positive delay iff staging stays nonempty. Stable storage is set so
     due times matter (only the due prefix may flush). *)
  let b_config =
    To_service.make_config ~batch_window:2.0 ~stable_storage_latency:2.0
      vs_config
  in
  let h = To_service.handlers b_config in
  let me = 1 in
  let set_timers effects =
    List.filter_map
      (function
        | Gcs_sim.Engine.Set_timer { id; delay } -> Some (id, delay)
        | _ -> None)
      effects
  in
  let node = To_service.initial b_config me in
  let node, effects = h.Gcs_sim.Engine.on_input me ~now:5.0 "a" node in
  let flush_id, delay0 =
    match set_timers effects with
    | [ (id, d) ] -> (id, d)
    | l -> Alcotest.failf "first staged value armed %d timers" (List.length l)
  in
  Alcotest.(check (float 1e-9)) "armed for the submit delay" 2.0 delay0;
  Alcotest.(check int) "one value staged" 1
    (List.length (To_service.node_staging node));
  let node, effects = h.Gcs_sim.Engine.on_input me ~now:6.0 "b" node in
  Alcotest.(check int) "no re-arm while staging nonempty" 0
    (List.length (set_timers effects));
  Alcotest.(check int) "two values staged" 2
    (List.length (To_service.node_staging node));
  (* First firing: only "a" is due; "b" (due 8.0) must survive, and the
     re-arm must target it with a strictly positive delay. *)
  let node, effects = h.Gcs_sim.Engine.on_timer me ~now:7.0 ~id:flush_id node in
  (match To_service.node_staging node with
  | [ (t, v) ] ->
      Alcotest.(check string) "undue value kept" "b" v;
      Alcotest.(check (float 1e-9)) "kept its due time" 8.0 t
  | l -> Alcotest.failf "expected 1 staged value after flush, got %d" (List.length l));
  (match set_timers effects with
  | [ (id, d) ] ->
      Alcotest.(check int) "re-armed the flush timer" flush_id id;
      Alcotest.(check bool)
        (Printf.sprintf "strictly positive re-arm delay (%.3f)" d)
        true (d > 0.0)
  | l -> Alcotest.failf "expected 1 re-arm, got %d" (List.length l));
  (* Second firing drains the rest: staging empty ⇒ no timer pending. *)
  let node, effects = h.Gcs_sim.Engine.on_timer me ~now:8.0 ~id:flush_id node in
  Alcotest.(check int) "staging drained" 0
    (List.length (To_service.node_staging node));
  Alcotest.(check int) "no timer armed on empty staging" 0
    (List.length (set_timers effects));
  (* Co-due entries: two values staged at the same instant flush in ONE
     firing — the drain loop may not leave a due entry behind (a leftover
     would force a zero-delay re-arm). *)
  let node, _ = h.Gcs_sim.Engine.on_input me ~now:10.0 "c" node in
  let node, _ = h.Gcs_sim.Engine.on_input me ~now:10.0 "d" node in
  let node, effects = h.Gcs_sim.Engine.on_timer me ~now:12.0 ~id:flush_id node in
  Alcotest.(check int) "co-due entries drained together" 0
    (List.length (To_service.node_staging node));
  Alcotest.(check int) "nothing re-armed afterwards" 0
    (List.length (set_timers effects))

let test_submit_during_view_change () =
  (* Regression: values staged when a Newview lands must be flushed into
     the new view, not stranded. A steady submission stream across a
     partition and heal keeps staging nonempty at most instants, so each
     view install catches staged values; the observer asserts staging is
     empty immediately after every install, and completeness at the
     horizon shows no accepted value was lost. *)
  let b_config = To_service.make_config ~batch_window:3.0 vs_config in
  let wl =
    List.concat_map
      (fun p ->
        List.init 30 (fun k ->
            ( 15.0 +. (float_of_int k *. 1.4) +. (0.11 *. float_of_int p),
              p,
              Printf.sprintf "w%d.%d" p k )))
      procs
  in
  let failures =
    partition_at 40.0 [ [ 0; 1; 2 ]; [ 3; 4 ] ] @ heal_at 120.0
  in
  let caught_staged = ref false in
  let observe _p pre post =
    if
      To_service.node_views_installed post
      > To_service.node_views_installed pre
    then begin
      if To_service.node_staging pre <> [] then caught_staged := true;
      Alcotest.(check int) "staging empty right after a view install" 0
        (List.length (To_service.node_staging post))
    end
  in
  let run =
    To_service.run_on ~observe
      ~backend:
        (Gcs_sim.Backend.of_config (Gcs_sim.Engine.default_config ~delta))
      b_config ~workload:wl ~failures ~until:500.0 ~seed:47
  in
  (match To_service.to_conforms b_config run with
  | Ok () -> ()
  | Error err ->
      Alcotest.failf "view-change batching trace rejected: %s"
        (Format.asprintf "%a" To_trace_checker.pp_error err));
  Alcotest.(check bool)
    "some view install actually caught staged values" true !caught_staged;
  Alcotest.(check int) "no accepted value lost across view changes"
    (n * List.length wl)
    (To_service.deliveries run)

let test_weighted_quorum_primary () =
  (* The paper fixes an arbitrary intersecting quorum system Q, not
     necessarily majorities. Give processor 0 enough weight that {0, x} is
     a quorum: after a 2-3 split that keeps 0 in the SMALL side, the
     2-processor side is primary and keeps confirming, while the
     3-processor side (a majority!) blocks. *)
  let weights = Proc.Map.of_seq (List.to_seq [ (0, 4); (1, 1); (2, 1); (3, 1); (4, 1) ]) in
  let quorums = Quorum.weighted_majorities ~weights in
  let wconfig = To_service.make_config ~quorums vs_config in
  let failures = partition_at 40.0 [ [ 0; 1 ]; [ 2; 3; 4 ] ] in
  let wl =
    workload ~senders:[ 0; 2 ] ~from_time:100.0 ~spacing:11.0 ~count:5
  in
  let run = To_service.run wconfig ~workload:wl ~failures ~until:500.0 ~seed:29 in
  (match To_service.to_conforms wconfig run with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "weighted quorum TO: %s"
        (Format.asprintf "%a" To_trace_checker.pp_error e));
  let deliveries_at p =
    List.length
      (List.filter
         (fun (_, a) ->
           match a with
           | To_action.Brcv { dst; _ } -> Proc.equal dst p
           | _ -> false)
         (Timed.actions (To_service.client_trace run)))
  in
  Alcotest.(check bool) "weighted side (with 0) confirms" true
    (deliveries_at 1 > 0);
  Alcotest.(check int) "numeric majority without weight blocks" 0
    (deliveries_at 3)

let prop_random_failures_preserve_to =
  QCheck.Test.make ~name:"random failure scripts preserve TO safety" ~count:15
    QCheck.small_nat
    (fun seed ->
      let prng = Gcs_stdx.Prng.create ((seed * 13) + 3) in
      let failures =
        List.init 10 (fun i ->
            let t = 30.0 +. (float_of_int i *. 30.0) in
            let p = Gcs_stdx.Prng.pick_exn prng procs in
            let q = Gcs_stdx.Prng.pick_exn prng procs in
            let s =
              match Gcs_stdx.Prng.int prng 3 with
              | 0 -> Fstatus.Good
              | 1 -> Fstatus.Bad
              | _ -> Fstatus.Ugly
            in
            if Gcs_stdx.Prng.bool prng || Proc.equal p q then
              (t, Fstatus.Proc_status (p, s))
            else (t, Fstatus.Link_status (p, q, s)))
      in
      let run =
        To_service.run config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:7.0 ~count:10)
          ~failures ~until:450.0 ~seed
      in
      Result.is_ok (To_service.to_conforms config run)
      && Result.is_ok (To_service.vs_conforms config run))

let () =
  Alcotest.run "end_to_end"
    [
      ( "safety",
        [
          Alcotest.test_case "steady state conformance" `Quick
            test_steady_state;
          Alcotest.test_case "minority blocks while partitioned" `Quick
            test_minority_blocks;
          Alcotest.test_case "crash and recover" `Quick
            test_crash_recover_preserves_order;
        ] );
      ( "to-property",
        [
          Alcotest.test_case "steady state" `Quick test_steady_state_to_property;
          Alcotest.test_case "majority side confirms" `Quick
            test_partition_majority_confirms;
          Alcotest.test_case "heal merges minority values" `Quick
            test_heal_merges_minority_values;
          Alcotest.test_case "weighted (non-majority) quorums" `Quick
            test_weighted_quorum_primary;
        ] );
      ( "variants",
        [
          Alcotest.test_case "stable storage adds latency" `Quick
            test_stable_storage_variant;
          Alcotest.test_case "batching delivers all, in order" `Quick
            test_batching_variant;
          Alcotest.test_case "flush timer invariant" `Quick
            test_batching_timer_invariant;
          Alcotest.test_case "submit during view change" `Quick
            test_submit_during_view_change;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_failures_preserve_to ] );
    ]
