(* Tests for the fixed-size domain pool: result ordering, determinism of
   the parallel nemesis sweep against the sequential one, and exception
   propagation out of worker domains. *)

open Gcs_core
open Gcs_impl

let test_map_matches_list_map () =
  let f x = (x * 37) mod 101 in
  List.iter
    (fun n ->
      let xs = List.init n (fun i -> i) in
      List.iter
        (fun jobs ->
          Alcotest.(check (list int))
            (Printf.sprintf "n=%d jobs=%d" n jobs)
            (List.map f xs)
            (Gcs_stdx.Pool.map ~jobs f xs))
        [ 1; 2; 3; 4; 9 ])
    [ 0; 1; 2; 7; 64; 257 ]

let test_map_preserves_order_under_skew () =
  (* Give early items much more work than late ones so domains finish out
     of submission order; results must still come back in input order. *)
  let xs = List.init 32 (fun i -> i) in
  let f i =
    let spins = (32 - i) * 10_000 in
    let acc = ref 0 in
    for k = 1 to spins do
      acc := (!acc + k) mod 7919
    done;
    (i, !acc)
  in
  Alcotest.(check (list (pair int int)))
    "skewed work, ordered results" (List.map f xs)
    (Gcs_stdx.Pool.map ~jobs:4 f xs)

let test_default_jobs_env () =
  (* default_jobs reads GCS_JOBS; bogus or missing values mean 1. The
     test suite may itself run under GCS_JOBS, so only check coherence. *)
  let d = Gcs_stdx.Pool.default_jobs () in
  Alcotest.(check bool) "default at least 1" true (d >= 1);
  match Sys.getenv_opt "GCS_JOBS" with
  | Some s when int_of_string_opt (String.trim s) = Some d -> ()
  | Some _ | None -> Alcotest.(check bool) "fallback is 1 or env" true (d >= 1)

exception Boom of int

let test_exception_propagates () =
  (* A crashing worker must not hang the pool, and the propagated
     exception is deterministically the lowest failing index. *)
  let xs = List.init 40 (fun i -> i) in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d raises lowest index" jobs)
        (Boom 17)
        (fun () ->
          ignore
            (Gcs_stdx.Pool.map ~jobs
               (fun i -> if i >= 17 && i mod 2 = 1 then raise (Boom i) else i)
               xs)))
    [ 1; 2; 4 ]

let test_concurrent_failures_deterministic_winner () =
  (* Two workers raising in the same batch, on purpose in the same
     scheduling window: indices are claimed in ascending order via
     fetch_and_add, so the claimed set is a contiguous prefix and every
     claimed item completes — the propagated exception is the lowest
     raising index, whichever domain crosses the line first in wall
     time. Repeat to give an unlucky interleaving every chance. *)
  let xs = List.init 16 (fun i -> i) in
  for round = 1 to 50 do
    List.iter
      (fun jobs ->
        Alcotest.check_raises
          (Printf.sprintf "round %d jobs=%d: lowest of two raisers" round
             jobs)
          (Boom 6)
          (fun () ->
            ignore
              (Gcs_stdx.Pool.map ~jobs
                 (fun i ->
                   if i = 6 || i = 7 then raise (Boom i)
                   else begin
                     (* skew: later items finish first, so the higher
                        raiser tends to fire before the lower one *)
                     let acc = ref 0 in
                     for k = 1 to (16 - i) * 500 do
                       acc := (!acc + k) mod 7919
                     done;
                     ignore !acc;
                     i
                   end)
                 xs)))
      [ 2; 4 ]
  done

let test_iter_runs_everything () =
  let hits = Array.init 50 (fun _ -> Atomic.make 0) in
  Gcs_stdx.Pool.iter ~jobs:4 (fun i -> Atomic.incr hits.(i))
    (List.init 50 (fun i -> i));
  Alcotest.(check (list int)) "every item visited once"
    (List.init 50 (fun _ -> 1))
    (Array.to_list (Array.map Atomic.get hits))

(* ------------------------------------------------------------------ *)
(* Determinism of the parallel nemesis sweep: the whole point of the
   pool is that a parallel soak is byte-identical to the sequential one,
   so a failing seed reproduces with `gcs nemesis --seed N`. *)

let nemesis_batch ~jobs seeds =
  let n = 5 in
  let procs = Proc.all ~n in
  let vs_config =
    { Vs_node.procs; p0 = procs; pi = 8.0; mu = 10.0; delta = 1.0 }
  in
  let config = To_service.make_config vs_config in
  Gcs_nemesis.Harness.run_batch ~jobs ~config ~events:8 ~seeds ()

let nemesis_outcomes ~jobs seeds =
  List.map Gcs_nemesis.Harness.to_json (nemesis_batch ~jobs seeds)

let test_nemesis_batch_deterministic () =
  let seeds = List.init 8 (fun i -> 301 + (i * 13)) in
  let sequential = nemesis_outcomes ~jobs:1 seeds in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d byte-identical to sequential" jobs)
        sequential
        (nemesis_outcomes ~jobs seeds))
    [ 2; 4 ]

let test_nemesis_metrics_deterministic () =
  (* The metrics registries are per-run values, never globals, so the
     rendered snapshots — including the latency histogram floats — must
     be byte-identical between a sequential and a 4-domain batch. *)
  let seeds = List.init 6 (fun i -> 511 + (i * 17)) in
  let snapshots jobs =
    List.map
      (fun o -> Gcs_stdx.Metrics.to_json o.Gcs_nemesis.Harness.metrics)
      (nemesis_batch ~jobs seeds)
  in
  let sequential = snapshots 1 in
  Alcotest.(check (list string)) "jobs=4 metrics JSON byte-identical"
    sequential (snapshots 4)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map = List.map at any job count" `Quick
            test_map_matches_list_map;
          Alcotest.test_case "ordered results under skewed work" `Quick
            test_map_preserves_order_under_skew;
          Alcotest.test_case "default_jobs env" `Quick test_default_jobs_env;
          Alcotest.test_case "worker exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "concurrent failures: deterministic winner"
            `Quick test_concurrent_failures_deterministic_winner;
          Alcotest.test_case "iter visits every item" `Quick
            test_iter_runs_everything;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel nemesis sweep = sequential" `Slow
            test_nemesis_batch_deterministic;
          Alcotest.test_case "metrics snapshots = sequential" `Slow
            test_nemesis_metrics_deterministic;
        ] );
    ]
