(* Bounded exhaustive model checking of the VStoTO-system: every reachable
   state of a small instance (2 processors, 1 client value per processor
   per view, a bounded number of views) is checked against the Section 6
   invariants, and every transition against the forward simulation. This
   complements the randomized executions in test_vstoto.ml with full
   coverage of a small state space. *)

open Gcs_automata
open Gcs_core

let procs = Proc.all ~n:2
let p0 = procs
let quorums = Quorum.majorities ~n:2
let params = Vstoto_system.make_params ~procs ~p0 ~quorums ()
let automaton = Vstoto_system.automaton params

(* Deterministic, finite injection: client submissions are offered while
   the processor has little in flight; view creations are offered up to a
   bound, with every non-empty membership. *)
let inject ~max_views state =
  let bcasts =
    List.filter_map
      (fun p ->
        let node = Vstoto_system.node state p in
        if Gcs_stdx.Tape.is_empty node.Vstoto.delay && node.Vstoto.nextseqno <= 2 then
          Some (Sys_action.Bcast (p, "a"))
        else None)
      procs
  in
  let created = state.Vstoto_system.vs.Vs_machine.created in
  let creates =
    if View_id.Map.cardinal created >= max_views then []
    else
      let num =
        1 + View_id.Map.fold (fun g _ acc -> max g.View_id.num acc) created 0
      in
      List.map
        (fun members ->
          Sys_action.Vs
            (Vs_action.Createview
               (View.make (View_id.make ~num ~origin:0) members)))
        [ [ 0 ]; [ 1 ]; [ 0; 1 ] ]
  in
  bcasts @ creates

let invariants = Vstoto_invariants.all params

let test_exhaustive_two_views () =
  match
    Explore.bfs_with_edges automaton
      ~inject:(inject ~max_views:2)
      ~key:State_key.system_state ~max_states:60_000 ~invariants
      ~on_edge:(fun pre action post ->
        (* Per-transition forward simulation (Lemma 6.25). *)
        let abstract = To_machine.automaton (To_simulation.abstract_params params) in
        let f = To_simulation.f params in
        let rec run st = function
          | [] -> Ok st
          | a :: rest -> (
              match abstract.Automaton.transition st a with
              | Some st' -> run st' rest
              | None -> Error "abstract action not enabled")
        in
        match run (f pre) (To_simulation.corresponds params pre action post) with
        | Error e -> Error e
        | Ok final ->
            if
              To_machine.equal_state
                (To_simulation.abstract_params params)
                final (f post)
            then Ok ()
            else Error "abstract state mismatch")
  with
  | Explore.Exhausted { states } ->
      Printf.printf "exhausted the reachable space: %d states\n" states;
      Alcotest.(check bool) "explored something substantial" true (states > 500)
  | Explore.Bound_reached { states } ->
      Printf.printf "bound reached at %d states (all passed)\n" states
  | Explore.Violation { invariant; detail; path; _ } ->
      Alcotest.failf "%s: %s\npath: %s" invariant detail
        (String.concat " ; "
           (List.map (Format.asprintf "%a" Sys_action.pp) path))

let test_exhaustive_three_views_invariants_only () =
  match
    Explore.bfs automaton
      ~inject:(inject ~max_views:3)
      ~key:State_key.system_state ~max_states:40_000 ~invariants
  with
  | Explore.Exhausted { states } ->
      Printf.printf "exhausted: %d states\n" states
  | Explore.Bound_reached { states } ->
      Printf.printf "bound reached at %d states (all passed)\n" states
  | Explore.Violation { invariant; detail; path; _ } ->
      Alcotest.failf "%s: %s\npath length %d" invariant detail
        (List.length path)

(* VS-machine alone explores further for the same bound; check Lemma 4.1
   on every reachable state of a 2-processor instance. *)
let test_exhaustive_vs_machine () =
  let vs_params =
    { Vs_machine.procs; p0 = procs; equal_msg = String.equal; weak = false }
  in
  let vs = Vs_machine.automaton vs_params in
  let inject state =
    let sends =
      List.map (fun p -> Vs_action.Gpsnd { sender = p; msg = "m" }) procs
    in
    let sends =
      (* Bound the space: at most 2 messages ordered+pending per (p, g). *)
      List.filter
        (fun a ->
          match a with
          | Vs_action.Gpsnd { sender; _ } -> (
              match Vs_machine.current_of state sender with
              | Some g ->
                  List.length (Vs_machine.pending_of state sender g)
                  + List.length
                      (List.filter
                         (fun (_, p) -> Proc.equal p sender)
                         (Vs_machine.queue_of state g))
                  < 2
              | None -> false)
          | _ -> false)
        sends
    in
    let created = state.Vs_machine.created in
    let creates =
      if View_id.Map.cardinal created >= 2 then []
      else
        let num =
          1 + View_id.Map.fold (fun g _ acc -> max g.View_id.num acc) created 0
        in
        List.map
          (fun members ->
            Vs_action.Createview (View.make (View_id.make ~num ~origin:0) members))
          [ [ 0 ]; [ 1 ]; [ 0; 1 ] ]
    in
    sends @ creates
  in
  let key s = State_key.vs_state ~msg:(fun (m : string) -> m) s in
  match
    Explore.bfs vs ~inject ~key ~max_states:120_000
      ~invariants:(Vs_machine.invariants vs_params)
  with
  | Explore.Exhausted { states } ->
      Printf.printf "VS-machine exhausted: %d states\n" states
  | Explore.Bound_reached { states } ->
      Printf.printf "VS-machine bound reached at %d states (all passed)\n" states
  | Explore.Violation { invariant; detail; path; _ } ->
      Alcotest.failf "%s: %s (path length %d)" invariant detail
        (List.length path)

(* n=3: the smallest instance with asymmetric quorums — a 2-member view
   is quorate while a singleton is not, so primary hand-offs and summary
   exchange interleave in ways n=2 cannot reach. The state space is much
   larger, so the default run only smoke-tests a bounded prefix; set
   GCS_SOAK_ITERS to scale the bound (states checked = 15k × iters).
   States are keyed by State_key.system_state, the canonical
   serialization (Map/Set bindings, not physical tree shape). *)
let soak_iters =
  match Sys.getenv_opt "GCS_SOAK_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some k when k > 0 -> k | _ -> 1)
  | None -> 1

let test_exhaustive_three_procs () =
  let procs3 = Proc.all ~n:3 in
  let quorums3 = Quorum.majorities ~n:3 in
  let params3 =
    Vstoto_system.make_params ~procs:procs3 ~p0:procs3 ~quorums:quorums3 ()
  in
  let automaton3 = Vstoto_system.automaton params3 in
  let inject3 state =
    let bcasts =
      List.filter_map
        (fun p ->
          let node = Vstoto_system.node state p in
          if
            Gcs_stdx.Tape.is_empty node.Vstoto.delay
            && node.Vstoto.nextseqno <= 1
          then
            Some (Sys_action.Bcast (p, "a"))
          else None)
        procs3
    in
    let created = state.Vstoto_system.vs.Vs_machine.created in
    let creates =
      if View_id.Map.cardinal created >= 2 then []
      else
        let num =
          1 + View_id.Map.fold (fun g _ acc -> max g.View_id.num acc) created 0
        in
        (* Quorum-asymmetric memberships: a minority singleton, two
           distinct majorities, and the full view. *)
        List.map
          (fun members ->
            Sys_action.Vs
              (Vs_action.Createview
                 (View.make (View_id.make ~num ~origin:0) members)))
          [ [ 0 ]; [ 0; 1 ]; [ 1; 2 ]; [ 0; 1; 2 ] ]
    in
    bcasts @ creates
  in
  match
    Explore.bfs automaton3 ~inject:inject3 ~key:State_key.system_state
      ~max_states:(15_000 * soak_iters)
      ~invariants:(Vstoto_invariants.all params3)
  with
  | Explore.Exhausted { states } ->
      Printf.printf "n=3 exhausted: %d states\n" states
  | Explore.Bound_reached { states } ->
      Printf.printf "n=3 bound reached at %d states (all passed)\n" states
  | Explore.Violation { invariant; detail; path; _ } ->
      Alcotest.failf "%s: %s\npath: %s" invariant detail
        (String.concat " ; "
           (List.map (Format.asprintf "%a" Sys_action.pp) path))

let test_explorer_detects_violations () =
  (* Sanity for the explorer itself: a false invariant is found with a
     path. *)
  let bogus =
    [
      Invariant.make "no processor ever confirms" (fun s ->
          List.for_all
            (fun p -> (Vstoto_system.node s p).Vstoto.nextconfirm = 1)
            procs);
    ]
  in
  match
    Explore.bfs automaton
      ~inject:(inject ~max_views:1)
      ~key:State_key.system_state ~max_states:50_000 ~invariants:bogus
  with
  | Explore.Violation { path; _ } ->
      Alcotest.(check bool) "violation path is non-empty" true (path <> [])
  | Explore.Exhausted _ | Explore.Bound_reached _ ->
      Alcotest.fail "expected the bogus invariant to be violated"

let () =
  Alcotest.run "explore"
    [
      ( "exhaustive",
        [
          Alcotest.test_case "2 procs, 2 views, invariants + simulation"
            `Slow test_exhaustive_two_views;
          Alcotest.test_case "2 procs, 3 views, invariants" `Slow
            test_exhaustive_three_views_invariants_only;
          Alcotest.test_case "3 procs, asymmetric quorums, invariants" `Slow
            test_exhaustive_three_procs;
          Alcotest.test_case "explorer finds violations" `Quick
            test_explorer_detects_violations;
          Alcotest.test_case "2 procs VS-machine, Lemma 4.1 exhaustive" `Slow
            test_exhaustive_vs_machine;
        ] );
    ]
