(* Transport contract tests.

   One automaton, one set of assertions, every backend: the guarantees a
   {!Gcs_transport.Iface.BACKEND} must provide regardless of how it moves
   messages — delivery to live members only (with replay on recovery),
   nothing delivered after the horizon, per-sender-pair FIFO, and a
   monotone clock. The suite is a functor in spirit: [contract_tests]
   takes a profile and is instantiated for the simulator and the bus, so
   a third backend gets its conformance battery by adding one profile. *)

open Gcs_core
module I = Gcs_transport.Iface

type input = { dst : Proc.t; payload : string }
type out = { at : Proc.t; src : Proc.t; payload : string }

type profile = {
  label : string;
  backend : I.backend;
  dt : float;  (** one time unit in the backend's own seconds *)
  residual : float;
      (** slack past [until] for a handler already in flight at close *)
}

let sim_profile =
  {
    label = "sim";
    backend =
      Gcs_sim.Backend.of_config (Gcs_sim.Engine.default_config ~delta:1.0);
    dt = 1.0;
    residual = 1e-9;
  }

let bus_profile =
  {
    label = "bus";
    backend = Gcs_transport.Bus.backend ();
    dt = 0.02;
    residual = 0.5;
  }

let procs = Proc.all ~n:3

(* Relay automaton: an input is a request to send its payload to [dst];
   a received packet is recorded in the trace. State is unit — the trace
   is the whole observation. *)
let relay_handlers =
  {
    I.on_start = (fun _ s -> (s, []));
    on_input =
      (fun _me ~now:_ { dst; payload } s -> (s, [ I.Send { dst; packet = payload } ]));
    on_packet =
      (fun me ~now:_ ~src payload s -> (s, [ I.Output { at = me; src; payload } ]));
    on_timer = (fun _ ~now:_ ~id:_ s -> (s, []));
  }

(* Metronome automaton: every node re-arms a timer forever and records a
   tick per firing — traffic that does not stop by itself, so the horizon
   has to stop it. *)
let metronome_handlers ~dt =
  let tick me = I.Output { at = me; src = me; payload = "tick" } in
  {
    I.on_start = (fun _me s -> (s, [ I.Set_timer { id = 1; delay = dt } ]));
    on_input = (fun _ ~now:_ (_ : input) s -> (s, []));
    on_packet = (fun _ ~now:_ ~src:_ (_ : string) s -> (s, []));
    on_timer =
      (fun me ~now:_ ~id:_ s -> (s, [ tick me; I.Set_timer { id = 1; delay = dt } ]));
  }

let run profile ?(handlers = relay_handlers) ~inputs ~failures ~until () =
  let (module B : I.BACKEND) = profile.backend in
  B.run I.string_codec ~procs ~handlers
    ~init:(fun _ -> ())
    ~inputs ~failures ~until ~seed:42

(* Payloads received at [p], in trace (= handling) order. *)
let received_at p trace =
  List.filter_map
    (fun (_, o) -> if o.at = p then Some o.payload else None)
    (Timed.actions trace)

let outputs_at p trace =
  List.filter (fun (_, o) -> o.at = p) (Timed.actions trace)

(* 1. Per-sender-pair FIFO: messages from 0 to 1, spaced a full dt apart
   (the simulator's good-link jitter can reorder only within dt/2), must
   arrive in send order and without loss. *)
let test_fifo profile () =
  let count = 16 in
  let inputs =
    List.init count (fun k ->
        (float_of_int (k + 1) *. profile.dt, 0, { dst = 1; payload = Printf.sprintf "m%02d" k }))
  in
  let until = float_of_int (count + 6) *. profile.dt in
  let result = run profile ~inputs ~failures:[] ~until () in
  let expected = List.init count (Printf.sprintf "m%02d") in
  Alcotest.(check (list string))
    "delivered in send order" expected
    (received_at 1 result.I.trace)

(* 2. Live members only: a crashed processor handles nothing while down;
   what reached its mailbox replays after recovery, not before. A healthy
   bystander is unaffected throughout. *)
let test_live_members profile () =
  let d = profile.dt in
  let recover_t = 8.0 *. d in
  let inputs =
    [
      (2.0 *. d, 0, { dst = 1; payload = "held" });
      (2.0 *. d, 0, { dst = 2; payload = "free" });
    ]
  in
  let failures =
    [
      (0.0, Fstatus.Proc_status (1, Fstatus.Bad));
      (recover_t, Fstatus.Proc_status (1, Fstatus.Good));
    ]
  in
  let until = 16.0 *. d in
  let result = run profile ~inputs ~failures ~until () in
  let trace = result.I.trace in
  Alcotest.(check (list string)) "bystander unaffected" [ "free" ] (received_at 2 trace);
  Alcotest.(check (list string)) "held message replays" [ "held" ] (received_at 1 trace);
  List.iter
    (fun (t, _) ->
      if t < recover_t -. profile.residual then
        Alcotest.failf "delivery at %.3f while processor 1 was down (recovery %.3f)"
          t recover_t)
    (outputs_at 1 trace)

(* 3. A bad link drops at send time; other links from the same sender
   keep working. *)
let test_bad_link profile () =
  let d = profile.dt in
  let inputs =
    [
      (2.0 *. d, 0, { dst = 1; payload = "lost" });
      (3.0 *. d, 0, { dst = 2; payload = "kept" });
    ]
  in
  let failures = [ (0.0, Fstatus.Link_status (0, 1, Fstatus.Bad)) ] in
  let result = run profile ~inputs ~failures ~until:(12.0 *. d) () in
  Alcotest.(check (list string)) "bad link delivers nothing" []
    (received_at 1 result.I.trace);
  Alcotest.(check (list string)) "good link unaffected" [ "kept" ]
    (received_at 2 result.I.trace)

(* 4. Close is close, and the clock is monotone: under self-sustaining
   timer traffic, no trace event is stamped past the horizon (plus one
   in-flight handler's residual) and timestamps never go backwards. *)
let test_close_and_clock profile () =
  let until = 20.0 *. profile.dt in
  let result =
    run profile ~handlers:(metronome_handlers ~dt:profile.dt) ~inputs:[]
      ~failures:[] ~until ()
  in
  let trace = result.I.trace in
  let actions = Timed.actions trace in
  Alcotest.(check bool) "traffic flowed" true (List.length actions >= 3);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d ticked" p)
        true
        (outputs_at p trace <> []))
    procs;
  List.iter
    (fun (t, _) ->
      if t > until +. profile.residual then
        Alcotest.failf "event stamped %.4f past horizon %.4f" t until)
    actions;
  Alcotest.(check bool) "timestamps nondecreasing" true
    (Timed.is_time_ordered trace)

let contract_tests profile =
  let case name f = Alcotest.test_case name `Quick (f profile) in
  ( profile.label,
    [
      case "per-sender-pair FIFO" test_fifo;
      case "live members only, replay on recovery" test_live_members;
      case "bad link drops at send" test_bad_link;
      case "close and clock monotonicity" test_close_and_clock;
    ] )

(* ------------------------------------------------------------------ *)
(* Mailbox close/recv semantics. The hazard: a blocking [recv] checks
   emptiness, then parks on the condition — if closed were an *edge*
   (a broadcast only), a close landing between the check and the park
   would be missed and the receiver would hang forever. Closed is a
   state checked under the mailbox lock, so every schedule must
   terminate; these tests run the race many times across domains and
   would hang (and time out) on a regression, which is the assertion. *)

module Mailbox = Gcs_transport.Mailbox

let test_recv_drains_then_none () =
  let mb = Mailbox.create () in
  Mailbox.push mb 1;
  Mailbox.push mb 2;
  Mailbox.close mb;
  let r1 = Mailbox.recv mb in
  let r2 = Mailbox.recv mb in
  let r3 = Mailbox.recv mb in
  let r4 = Mailbox.recv mb in
  Alcotest.(check (list (option int)))
    "push-then-close drains in order, then None"
    [ Some 1; Some 2; None; None ]
    [ r1; r2; r3; r4 ]

let test_recv_closed_empty_returns () =
  let mb : int Mailbox.t = Mailbox.create () in
  Mailbox.close mb;
  Alcotest.(check (option int)) "closed+empty is None" None (Mailbox.recv mb)

let test_recv_blocked_during_close_returns () =
  (* Many rounds: each parks a receiver on an empty mailbox, then closes
     from another domain. A missed wakeup hangs the join. *)
  for _ = 1 to 100 do
    let mb : int Mailbox.t = Mailbox.create () in
    let receiver = Domain.spawn (fun () -> Mailbox.recv mb) in
    Domain.cpu_relax ();
    let closer = Domain.spawn (fun () -> Mailbox.close mb) in
    let got = Domain.join receiver in
    Domain.join closer;
    Alcotest.(check (option int)) "blocked recv returns None" None got
  done

let test_recv_race_push_close () =
  (* Push and close race a parked receiver: it must get either the
     element or None — and always return. *)
  let some = ref 0 and none = ref 0 in
  for _ = 1 to 100 do
    let mb : int Mailbox.t = Mailbox.create () in
    let receiver = Domain.spawn (fun () -> Mailbox.recv mb) in
    let pusher =
      Domain.spawn (fun () ->
          Mailbox.push mb 7;
          Mailbox.close mb)
    in
    (match Domain.join receiver with
    | Some v ->
        Alcotest.(check int) "the pushed element" 7 v;
        incr some
    | None -> incr none);
    Domain.join pusher
  done;
  (* close happens strictly after push here, so a receiver that misses
     the element can only be one that returned None before the push —
     impossible: recv blocks until a wake, and both wakes leave it
     either an element or the closed state. *)
  Alcotest.(check int) "every element received" 100 !some

let mailbox_tests =
  ( "mailbox close/recv",
    [
      Alcotest.test_case "push-then-close drains, then None" `Quick
        test_recv_drains_then_none;
      Alcotest.test_case "closed+empty returns None" `Quick
        test_recv_closed_empty_returns;
      Alcotest.test_case "recv blocked during close returns" `Quick
        test_recv_blocked_during_close_returns;
      Alcotest.test_case "recv racing push+close never hangs" `Quick
        test_recv_race_push_close;
    ] )

let () =
  Alcotest.run "transport contract"
    [ contract_tests sim_profile; contract_tests bus_profile; mailbox_tests ]
