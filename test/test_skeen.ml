(* Tests for the Skeen timestamp total-order backend: full-group runs
   against the classic TO oracle, multi-group runs against the
   group-order oracle, the 3-hop latency contrast with the token ring,
   codec totality, and sim-vs-bus agreement through the transport seam. *)

open Gcs_core
open Gcs_skeen

let procs = Proc.all ~n:4
let delta = 1.0
let config = Skeen.make_config ~procs

let full_workload ~senders ~from_time ~spacing ~count =
  List.concat_map
    (fun (i, p) ->
      List.init count (fun k ->
          ( from_time +. (float_of_int k *. spacing) +. (0.17 *. float_of_int i),
            p,
            Skeen.full_group (Printf.sprintf "s%d.%d" p k) )))
    (List.mapi (fun i p -> (i, p)) senders)

let check_ok label = function
  | Ok () -> ()
  | Error detail -> Alcotest.failf "%s: %s" label detail

let check_invariants run =
  match Skeen.node_invariant_failure run.Skeen.final_nodes with
  | None -> ()
  | Some (check, detail) -> Alcotest.failf "%s: %s" check detail

let deliveries_at p run =
  List.length
    (List.filter
       (fun (_, a) ->
         match a with
         | To_action.Brcv { dst; _ } -> Proc.equal dst p
         | _ -> false)
       (Timed.actions run.Skeen.trace))

let test_steady_state () =
  List.iter
    (fun seed ->
      let workload =
        full_workload ~senders:procs ~from_time:5.0 ~spacing:5.0 ~count:10
      in
      let run =
        Skeen.run ~delta config ~workload ~failures:[] ~until:300.0 ~seed
      in
      (match Skeen.to_conforms config run with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "skeen trace rejected: %s"
            (Format.asprintf "%a" To_trace_checker.pp_error e));
      check_ok "group order" (Skeen.check_group_order config ~workload run.trace);
      check_ok "complete" (Skeen.check_complete config ~workload run.trace);
      Alcotest.(check int) "everything delivered everywhere"
        (Skeen.expected_deliveries config workload)
        (Skeen.deliveries run);
      check_invariants run;
      Proc.Map.iter
        (fun p node ->
          Alcotest.(check int)
            (Printf.sprintf "no pending at %d" p)
            0
            (Skeen.node_pending node);
          Alcotest.(check int)
            (Printf.sprintf "no outstanding at %d" p)
            0
            (Skeen.node_outstanding node))
        run.final_nodes)
    [ 1; 2; 3 ]

let test_multi_group () =
  (* Overlapping subsets: {0,1}, {1,2,3}, {0,2} and the full group, from
     several origins (an origin need not address itself). *)
  List.iter
    (fun seed ->
      let subset i =
        match i mod 4 with
        | 0 -> [ 0; 1 ]
        | 1 -> [ 1; 2; 3 ]
        | 2 -> [ 0; 2 ]
        | _ -> []
      in
      let workload =
        List.init 24 (fun i ->
            let p = List.nth procs (i mod 4) in
            ( 5.0 +. (1.3 *. float_of_int i),
              p,
              { Skeen.value = Printf.sprintf "m%d.%d" p i; dests = subset i } ))
      in
      let run =
        Skeen.run ~delta config ~workload ~failures:[] ~until:200.0 ~seed
      in
      check_ok "group order" (Skeen.check_group_order config ~workload run.trace);
      check_ok "complete" (Skeen.check_complete config ~workload run.trace);
      check_invariants run;
      (* Per-node counts follow from the destination sets alone. *)
      List.iter
        (fun p ->
          let expected =
            List.length
              (List.filter
                 (fun (_, _, input) ->
                   List.exists (Proc.equal p)
                     (Skeen.normalize_dests config input.Skeen.dests))
                 workload)
          in
          Alcotest.(check int)
            (Printf.sprintf "deliveries at %d" p)
            expected (deliveries_at p run))
        procs)
    [ 11; 12; 13 ]

let test_sender_fifo () =
  (* One origin, one destination subset: FIFO links force submission
     order at every destination. *)
  let dests = [ 0; 2 ] in
  let workload =
    List.init 12 (fun k ->
        ( 5.0 +. (0.4 *. float_of_int k),
          3,
          { Skeen.value = Printf.sprintf "f%d" k; dests } ))
  in
  let run = Skeen.run ~delta config ~workload ~failures:[] ~until:100.0 ~seed:5 in
  check_ok "group order" (Skeen.check_group_order config ~workload run.trace);
  check_ok "complete" (Skeen.check_complete config ~workload run.trace);
  let expected = List.init 12 (fun k -> Printf.sprintf "3:f%d" k) in
  List.iter
    (fun (p, order) ->
      if List.exists (Proc.equal p) dests then
        Alcotest.(check (list string))
          (Printf.sprintf "submission order at %d" p)
          expected order
      else
        Alcotest.(check (list string))
          (Printf.sprintf "nothing at %d" p)
          [] order)
    (Skeen.orders procs run)

let test_partition_safety () =
  (* Cut {0,1} from {2,3} mid-run and keep submitting on both sides:
     Skeen has no retransmission, so completeness is forfeit, but every
     safety clause of the group-order oracle must hold. *)
  List.iter
    (fun seed ->
      let failures =
        List.map
          (fun e -> (20.0, e))
          (Fstatus.partition_events ~parts:[ [ 0; 1 ]; [ 2; 3 ] ])
      in
      let workload =
        full_workload ~senders:procs ~from_time:5.0 ~spacing:7.0 ~count:6
      in
      let run =
        Skeen.run ~delta config ~workload ~failures ~until:200.0 ~seed
      in
      check_ok "group order under partition"
        (Skeen.check_group_order config ~workload run.trace);
      check_invariants run)
    [ 21; 22; 23 ]

let test_delivery_latency () =
  (* A lone full-group message commits in three hops: propose, proposal,
     commit. Every delivery lands within 3δ of the submission — the
     structural latency edge over the token ring (d = 2π + nδ). *)
  let workload = [ (10.0, 1, Skeen.full_group "lone") ] in
  let run = Skeen.run ~delta config ~workload ~failures:[] ~until:50.0 ~seed:3 in
  check_ok "complete" (Skeen.check_complete config ~workload run.trace);
  List.iter
    (fun (t, a) ->
      match a with
      | To_action.Brcv _ ->
          if t > 10.0 +. (3.0 *. delta) +. 1e-9 then
            Alcotest.failf "delivery at %.3f, later than 3 hops" t
      | _ -> ())
    (Timed.actions run.Skeen.trace)

let test_sim_vs_bus_anchored () =
  (* Single origin, full group, FIFO links: both backends must produce
     the identical per-node order — the submission order. *)
  let workload =
    List.init 8 (fun k ->
        (0.02 *. float_of_int k, 0, Skeen.full_group (Printf.sprintf "a%d" k)))
  in
  let expected_outputs = 8 + Skeen.expected_deliveries config workload in
  let sim = Skeen.run ~delta:0.1 config ~workload ~failures:[] ~until:60.0 ~seed:9 in
  let bus =
    Skeen.run_on
      ~backend:(Gcs_transport.Bus.backend ())
      ~stop:(fun ~now:_ ~outputs -> outputs >= expected_outputs)
      config ~workload ~failures:[] ~until:30.0 ~seed:9
  in
  check_ok "sim complete" (Skeen.check_complete config ~workload sim.trace);
  check_ok "bus complete" (Skeen.check_complete config ~workload bus.trace);
  check_ok "bus group order" (Skeen.check_group_order config ~workload bus.trace);
  List.iter2
    (fun (p, sim_order) (p', bus_order) ->
      Alcotest.(check int) "same proc" p p';
      Alcotest.(check (list string))
        (Printf.sprintf "same order at %d" p)
        sim_order bus_order)
    (Skeen.orders procs sim) (Skeen.orders procs bus)

let test_bus_multi_group () =
  (* Multi-origin, mixed subsets on the real bus: orders may differ from
     the simulator's, but the Skeen guarantees must hold per run. *)
  let subset i = match i mod 3 with 0 -> [ 0; 1; 2 ] | 1 -> [ 1; 3 ] | _ -> [] in
  let workload =
    List.init 12 (fun i ->
        let p = List.nth procs (i mod 4) in
        ( 0.01 *. float_of_int i,
          p,
          { Skeen.value = Printf.sprintf "b%d.%d" p i; dests = subset i } ))
  in
  let expected_outputs = 12 + Skeen.expected_deliveries config workload in
  let run =
    Skeen.run_on
      ~backend:(Gcs_transport.Bus.backend ())
      ~stop:(fun ~now:_ ~outputs -> outputs >= expected_outputs)
      config ~workload ~failures:[] ~until:30.0 ~seed:17
  in
  check_ok "bus group order" (Skeen.check_group_order config ~workload run.trace);
  check_ok "bus complete" (Skeen.check_complete config ~workload run.trace);
  check_invariants run

(* ------------------------------ codec -------------------------------- *)

open QCheck

let gen_proc = Gen.int_range 0 9
let gen_mid =
  Gen.map2 (fun sender seq -> { Skeen.sender; seq }) gen_proc (Gen.int_range 0 999)

let gen_ts =
  Gen.map2 (fun clock origin -> { Skeen.clock; origin }) (Gen.int_range 0 9999) gen_proc

(* Full byte range: the framing characters must be as likely as any. *)
let gen_value = Gen.(string_size ~gen:char (int_range 0 30))

let gen_packet =
  Gen.oneof
    [
      Gen.map3
        (fun mid value dests -> Skeen.Propose { mid; value; dests })
        gen_mid gen_value
        Gen.(list_size (int_range 0 5) gen_proc);
      Gen.map2 (fun mid ts -> Skeen.Proposal { mid; ts }) gen_mid gen_ts;
      Gen.map2 (fun mid ts -> Skeen.Commit { mid; ts }) gen_mid gen_ts;
    ]

let equal_packet a b =
  match (a, b) with
  | Skeen.Propose a, Skeen.Propose b ->
      Skeen.mid_compare a.mid b.mid = 0
      && String.equal a.value b.value
      && List.equal Proc.equal a.dests b.dests
  | Skeen.Proposal a, Skeen.Proposal b ->
      Skeen.mid_compare a.mid b.mid = 0 && Skeen.ts_compare a.ts b.ts = 0
  | Skeen.Commit a, Skeen.Commit b ->
      Skeen.mid_compare a.mid b.mid = 0 && Skeen.ts_compare a.ts b.ts = 0
  | _ -> false

let qcheck_roundtrip =
  Test.make ~name:"skeen packet codec roundtrips" ~count:500
    (make ~print:(Format.asprintf "%a" Skeen.pp_packet) gen_packet)
    (fun p ->
      match Skeen.decode_packet (Skeen.encode_packet p) with
      | Ok p' -> equal_packet p p'
      | Error e -> Test.fail_reportf "decode failed: %s" e)

let qcheck_decode_total =
  Test.make ~name:"skeen packet decode is total" ~count:1000
    (make Gen.(string_size ~gen:char (int_range 0 60)))
    (fun s ->
      match Skeen.decode_packet s with Ok _ | Error _ -> true)

let () =
  Alcotest.run "skeen"
    [
      ( "protocol",
        [
          Alcotest.test_case "steady state full group" `Quick test_steady_state;
          Alcotest.test_case "multi-group addressing" `Quick test_multi_group;
          Alcotest.test_case "sender fifo per dest set" `Quick test_sender_fifo;
          Alcotest.test_case "partition keeps safety" `Quick test_partition_safety;
          Alcotest.test_case "3-hop delivery latency" `Quick test_delivery_latency;
        ] );
      ( "transport",
        [
          Alcotest.test_case "sim vs bus, anchored order" `Quick
            test_sim_vs_bus_anchored;
          Alcotest.test_case "bus multi-group oracle" `Quick test_bus_multi_group;
        ] );
      ( "codec",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_roundtrip; qcheck_decode_total ] );
    ]
